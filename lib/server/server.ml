module Engine = Rapida_core.Engine
module Batch_exec = Rapida_core.Batch_exec
module Plan_util = Rapida_core.Plan_util
module Analytical = Rapida_sparql.Analytical
module Scheduler = Rapida_mapred.Scheduler
module Stats = Rapida_mapred.Stats
module Trace = Rapida_mapred.Trace
module Json = Rapida_mapred.Json
module Table = Rapida_relational.Table
module Relops = Rapida_relational.Relops
module Metrics = Rapida_mapred.Metrics
module Exec_ctx = Rapida_mapred.Exec_ctx
module Card = Rapida_analysis.Interval.Card
module Stats_catalog = Rapida_analysis.Stats_catalog
module Cost_model = Rapida_planner.Cost_model
module Plan_cache = Rapida_planner.Plan_cache
module Defense = Rapida_planner.Defense
module Planner = Rapida_planner.Planner

type shed_policy = Drop_tail | Cost_aware | Deadline_aware

let shed_policy_name = function
  | Drop_tail -> "drop-tail"
  | Cost_aware -> "cost-aware"
  | Deadline_aware -> "deadline-aware"

let shed_policy_of_string = function
  | "drop-tail" -> Some Drop_tail
  | "cost-aware" -> Some Cost_aware
  | "deadline-aware" -> Some Deadline_aware
  | _ -> None

type shed_reason = Queue_full | Infeasible | Breaker_open

let shed_reason_name = function
  | Queue_full -> "queue-full"
  | Infeasible -> "infeasible"
  | Breaker_open -> "breaker-open"

type fate = Completed | Shed of shed_reason | Deadline_missed | Failed

let fate_name = function
  | Completed -> "completed"
  | Shed r -> "shed:" ^ shed_reason_name r
  | Deadline_missed -> "deadline-missed"
  | Failed -> "failed"

type overload = {
  ov_queue_cap : int option;
  ov_shed_policy : shed_policy;
  ov_deadline_s : float option;
  ov_breaker_k : int option;
  ov_breaker_cooldown_s : float;
  ov_degrade : bool;
  ov_degrade_depth : int;
  ov_degrade_drain_s : float;
  ov_verify_sample : int;
}

let overload ?queue_cap ?(shed_policy = Drop_tail) ?deadline_s ?breaker_k
    ?(breaker_cooldown_s = 120.0) ?(degrade = false) ?(degrade_depth = 8)
    ?(degrade_drain_s = 60.0) ?(verify_sample = 4) () =
  {
    ov_queue_cap = queue_cap;
    ov_shed_policy = shed_policy;
    ov_deadline_s = deadline_s;
    ov_breaker_k = breaker_k;
    ov_breaker_cooldown_s = breaker_cooldown_s;
    ov_degrade = degrade;
    ov_degrade_depth = degrade_depth;
    ov_degrade_drain_s = degrade_drain_s;
    ov_verify_sample = verify_sample;
  }

let overload_off = overload ()

let overload_enabled ov =
  ov.ov_queue_cap <> None || ov.ov_breaker_k <> None || ov.ov_degrade
  || ov.ov_deadline_s <> None

type optimize_cfg = {
  oc_policy : Cost_model.policy;
  oc_cache_capacity : int;
  oc_defense_k : int;
}

let optimize ?(policy = Cost_model.Worst_case) ?(cache_capacity = 64)
    ?(defense_k = 3) () =
  {
    oc_policy = policy;
    oc_cache_capacity = cache_capacity;
    oc_defense_k = defense_k;
  }

type config = {
  c_kind : Engine.kind;
  c_window_s : float;
  c_policy : Scheduler.policy;
  c_share : bool;
  c_overload : overload;
  c_optimize : optimize_cfg option;
  c_options : Plan_util.options;
}

let config ?(window_s = 5.0) ?(policy = Scheduler.Fair) ?(share = true)
    ?(overload = overload_off) ?optimize
    ?(options = Plan_util.default_options) kind =
  {
    c_kind = kind;
    c_window_s = window_s;
    c_policy = policy;
    c_share = share;
    c_overload = overload;
    c_optimize = optimize;
    c_options = options;
  }

type query_report = {
  q_id : int;
  q_label : string;
  q_arrival_s : float;
  q_batch : int;
  q_group : int;
  q_group_size : int;
  q_queue_s : float;
  q_latency_s : float;
  q_rows : int;
  q_deadline_s : float option;
  q_fate : fate;
  q_checked : bool;
  q_error : Engine.error option;
  q_matches_solo : bool;
}

type batch_report = {
  b_index : int;
  b_open_s : float;
  b_admit_s : float;
  b_size : int;
  b_group_sizes : int list;
}

type overload_report = {
  o_completed : int;
  o_shed_queue : int;
  o_shed_infeasible : int;
  o_shed_breaker : int;
  o_missed : int;
  o_failed : int;
  o_goodput : float;
  o_breaker_trips : int;
  o_level_steps : int;
  o_time_in_level : (int * float) list;
  o_completed_p50_s : float;
  o_completed_p95_s : float;
  o_completed_p99_s : float;
  o_missed_p50_s : float;
  o_missed_p95_s : float;
  o_missed_p99_s : float;
  o_checked : int;
}

type optimize_report = {
  p_policy : string;
  p_planned : int;
  p_cache : Plan_cache.stats;
  p_misestimates : int;
  p_fallbacks : int;
  p_breaker : string;
}

type t = {
  r_kind : Engine.kind;
  r_window_s : float;
  r_policy : Scheduler.policy;
  r_share : bool;
  r_queries : query_report list;
  r_batches : batch_report list;
  r_jobs : int;
  r_input_bytes : int;
  r_makespan_s : float;
  r_utilization : float;
  r_latency_mean_s : float;
  r_latency_p50_s : float;
  r_latency_p95_s : float;
  r_latency_p99_s : float;
  r_latency_max_s : float;
  r_solo_jobs : int;
  r_solo_input_bytes : int;
  r_solo_makespan_s : float;
  r_solo_latency_p50_s : float;
  r_solo_latency_p95_s : float;
  r_solo_latency_p99_s : float;
  r_jobs_saved : int;
  r_bytes_saved : int;
  r_all_matched : bool;
  r_errors : int;
  r_overload : overload_report option;
  r_optimize : optimize_report option;
  r_trace : Trace.t;
}

let percentile p xs =
  match List.sort compare xs with
  | [] -> 0.0
  | sorted ->
    let n = List.length sorted in
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
    List.nth sorted (min (max rank 1) n - 1)

let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let eps = 1e-9

(* Admission windows over the sorted arrival stream: a window opens at
   the first pending arrival, collects everything arriving within
   [window_s], and admits the batch when it closes. *)
let batch_arrivals window_s arrivals =
  let rec go idx = function
    | [] -> []
    | (a : Workload.arrival) :: _ as pending ->
      let close = a.Workload.a_time_s +. window_s in
      let members, rest =
        List.partition
          (fun (x : Workload.arrival) ->
            x.Workload.a_time_s <= close +. 1e-9)
          pending
      in
      (idx, a.Workload.a_time_s, close, members) :: go (idx + 1) rest
  in
  go 0 arrivals

(* Sharing off: every admitted query is its own group; [run_group] then
   takes the exact solo [Engine.execute] path for each. *)
let solo_groups queries =
  List.mapi
    (fun i (q : Analytical.t) ->
      {
        Batch_exec.g_members =
          [
            {
              Batch_exec.m_index = i;
              m_query = q;
              m_subqueries = q.Analytical.subqueries;
            };
          ];
        g_composite = None;
      })
    queries

(* One executed overlap group: its arrivals (member order), per-member
   outcomes, the degradation level it ran at, and the priced shared
   workflow. *)
type exec_group = {
  eg_index : int;
  eg_batch : int;
  eg_admit_s : float;
  eg_level : int;
  eg_members : (Workload.arrival * (Table.t, Engine.error) result) list;
  eg_stats : Stats.t;
}

let run cfg input (workload : Workload.t) =
  let ov = cfg.c_overload in
  (* The overload layer is active when any knob is set or any arrival
     carries a deadline; when inactive, every step below degenerates to
     the unprotected server and the report is bit-identical to it. *)
  let active = overload_enabled ov || Workload.has_deadlines workload in
  let deadline_of (a : Workload.arrival) =
    match a.Workload.a_deadline_s with
    | Some _ as d -> d
    | None -> ov.ov_deadline_s
  in
  let session = Engine.prepare cfg.c_kind input in
  let cluster = cfg.c_options.Plan_util.cluster in
  (* Cost-based planner state: one catalog (hashed once), one bounded
     plan cache, one per-session circuit breaker. [None] leaves every
     code path below byte-identical to the heuristic server. *)
  let opt =
    match cfg.c_optimize with
    | None -> None
    | Some oc ->
      let catalog = Stats_catalog.build (Engine.graph_of_input input) in
      let catalog_fp = Planner.catalog_fingerprint catalog in
      Some
        ( oc,
          catalog,
          catalog_fp,
          Planner.create_cache ~capacity:oc.oc_cache_capacity,
          Defense.create ~k:oc.oc_defense_k )
  in
  let planned = ref 0 in
  let misestimates = ref 0 in
  let batches = batch_arrivals cfg.c_window_s workload.Workload.arrivals in
  (* Back-to-back baseline: every query solo, sequentially, same
     cluster — the savings denominator, the identity reference, and the
     Cost_aware admission price (solo slot-seconds). *)
  let solo =
    List.map
      (fun (a : Workload.arrival) ->
        let ctx = Plan_util.context cfg.c_options in
        (a, Engine.execute session ctx a.Workload.a_query))
      workload.Workload.arrivals
  in
  let solo_by_id =
    List.map (fun ((s : Workload.arrival), r) -> (s.Workload.a_id, r)) solo
  in
  let solo_cost (a : Workload.arrival) =
    match List.assoc a.Workload.a_id solo_by_id with
    | Ok (o : Engine.output) -> Stats.slot_seconds o.Engine.stats
    | Error _ -> 0.0
  in
  let trace = Trace.create () in
  let committed = ref [] in
  let items = ref [] in
  let next = ref 0 in
  let shed = ref [] in
  let batch_reports = ref [] in
  let breaker_consec = ref 0 in
  let breaker_until = ref None in
  let breaker_trips = ref 0 in
  let level = ref 0 in
  let level_since = ref 0.0 in
  let level_steps = ref 0 in
  let time_in_level = Array.make 3 0.0 in
  let sched_items () = List.rev !items in
  let shed_query b_index admit_s reason (a : Workload.arrival) =
    shed := (a, reason, b_index) :: !shed;
    Trace.span trace
      ~name:("shed-" ^ shed_reason_name reason)
      ~cat:"overload" ~start_s:admit_s ~dur_s:0.0
      [
        ("query", Json.Int a.Workload.a_id);
        ("label", Json.String a.Workload.a_label);
      ]
  in
  (* Admission selection under a full queue: keep [room] members (in
     arrival order), shed the rest. Drop_tail sheds the latest arrivals;
     Cost_aware the most expensive (solo slot-seconds); Deadline_aware
     keeps the earliest absolute deadlines, shedding no-deadline queries
     first. *)
  let select_admitted room members =
    if room <= 0 then ([], members)
    else if List.length members <= room then (members, [])
    else
      let keyed = List.mapi (fun i a -> (i, a)) members in
      let key (i, (a : Workload.arrival)) =
        match ov.ov_shed_policy with
        | Drop_tail -> float_of_int i
        | Cost_aware -> solo_cost a
        | Deadline_aware -> (
          match deadline_of a with
          | None -> Float.infinity
          | Some d -> a.Workload.a_time_s +. d)
      in
      let ranked =
        List.stable_sort (fun x y -> compare (key x) (key y)) keyed
      in
      let rec take n = function
        | [] -> []
        | x :: rest -> if n <= 0 then [] else x :: take (n - 1) rest
      in
      let keep_idx = List.map fst (take room ranked) in
      let keep, drop =
        List.partition (fun (i, _) -> List.mem i keep_idx) keyed
      in
      (List.map snd keep, List.map snd drop)
  in
  (* Execute one batch's admitted members at a degradation level. Level
     0 is the configured server; level 1 turns cross-query sharing off;
     level 2 additionally plans with the broadcast-everything
     heuristic. Returns un-committed (members × outcomes, stats)
     groups in batch order. *)
  let execute_members lvl members =
    let queries = List.map (fun (a : Workload.arrival) -> a.Workload.a_query) members in
    let share = cfg.c_share && lvl = 0 in
    let options =
      if lvl >= 2 then Plan_util.degrade_options cfg.c_options
      else cfg.c_options
    in
    let groups =
      if share then Batch_exec.group_queries cfg.c_kind queries
      else solo_groups queries
    in
    List.map
      (fun (g : Batch_exec.group) ->
        (* Cost-based planning, per executed group. The breaker decides
           whether this group plans with the optimizer at all; a
           [Cooling] breaker pays one heuristic (unhinted) group and
           re-arms. Degraded batches (level >= 2) already run the
           broadcast-everything heuristic and are never planned. *)
        let options, escape_check =
          match opt with
          | Some (oc, catalog, catalog_fp, cache, defense)
            when lvl < 2 && Defense.arm_for_next defense ->
            let q =
              match g.Batch_exec.g_members with
              | [ m ] -> m.Batch_exec.m_query
              | members ->
                (* Shared group: what executes is the pooled composite,
                   so that is what gets planned (hint key -1). *)
                {
                  Analytical.subqueries =
                    List.concat_map
                      (fun (m : Batch_exec.member) -> m.Batch_exec.m_subqueries)
                      members;
                  outer_projection = [];
                  order_by = [];
                  limit = None;
                }
            in
            let d, _hit =
              Planner.plan_cached ~cache ~catalog ~catalog_fp
                ~policy:oc.oc_policy ~cluster q
            in
            incr planned;
            let check =
              (* The runtime defense needs a sound predicted interval for
                 the measured result; only a singleton group's root
                 cardinality has one. *)
              match g.Batch_exec.g_members with
              | [ _ ] -> Some (defense, d.Planner.d_root)
              | _ -> None
            in
            (Planner.apply d options, check)
          | Some _ | None -> (options, None)
        in
        let ctx = Plan_util.context options in
        let res = Batch_exec.run_group session ctx g in
        (match (escape_check, res.Batch_exec.outputs) with
        | Some (defense, interval), [ Ok table ] ->
          let escaped = not (Card.contains interval (Table.cardinality table)) in
          if escaped then begin
            incr misestimates;
            Metrics.add (Exec_ctx.metrics ctx) "opt.misestimates" 1
          end;
          Defense.observe defense ~escaped
        | Some _, _ | None, _ -> ());
        ( List.map2
            (fun (m : Batch_exec.member) out ->
              (List.nth members m.Batch_exec.m_index, out))
            g.Batch_exec.g_members res.Batch_exec.outputs,
          res.Batch_exec.stats ))
      groups
  in
  let commit b_index admit_s lvl executed =
    List.iter
      (fun (mems, (stats : Stats.t)) ->
        let index = !next in
        incr next;
        committed :=
          {
            eg_index = index;
            eg_batch = b_index;
            eg_admit_s = admit_s;
            eg_level = lvl;
            eg_members = mems;
            eg_stats = stats;
          }
          :: !committed;
        items :=
          {
            Scheduler.it_id = index;
            it_submit_s = admit_s;
            it_jobs = stats.Stats.jobs;
          }
          :: !items)
      executed
  in
  List.iter
    (fun (b_index, open_s, admit_s, members) ->
      let admitted =
        if not active then members
        else begin
          (* Measured pressure: queries still in flight at this admission
             instant, and how long the backlog takes to drain. *)
          let in_flight, drain_s =
            match sched_items () with
            | [] -> (0, 0.0)
            | its ->
              let s = Scheduler.simulate cluster cfg.c_policy its in
              List.fold_left
                (fun (n, d) eg ->
                  match Scheduler.placement s eg.eg_index with
                  | Some p when p.Scheduler.p_finish_s > admit_s +. eps ->
                    ( n + List.length eg.eg_members,
                      Float.max d (p.Scheduler.p_finish_s -. admit_s) )
                  | Some _ | None -> (n, d))
                (0, 0.0) !committed
          in
          let breaker_open =
            match !breaker_until with
            | Some until when admit_s +. eps < until -> true
            | Some _ ->
              (* cooldown elapsed: close the breaker and start fresh *)
              breaker_until := None;
              breaker_consec := 0;
              false
            | None -> false
          in
          if ov.ov_degrade then begin
            let target =
              if
                in_flight >= 2 * ov.ov_degrade_depth
                || drain_s >= 2.0 *. ov.ov_degrade_drain_s
              then 2
              else if
                in_flight >= ov.ov_degrade_depth
                || drain_s >= ov.ov_degrade_drain_s
              then 1
              else 0
            in
            if target <> !level then begin
              let dur = Float.max 0.0 (admit_s -. !level_since) in
              Trace.span trace
                ~name:(Printf.sprintf "level-%d" !level)
                ~cat:"overload" ~start_s:!level_since ~dur_s:dur
                [ ("to", Json.Int target) ];
              time_in_level.(!level) <- time_in_level.(!level) +. dur;
              incr level_steps;
              level := target;
              level_since := admit_s
            end
          end;
          if breaker_open then begin
            List.iter (shed_query b_index admit_s Breaker_open) members;
            []
          end
          else
            match ov.ov_queue_cap with
            | Some cap ->
              let room = max 0 (cap - in_flight) in
              let keep, drop = select_admitted room members in
              List.iter (shed_query b_index admit_s Queue_full) drop;
              keep
            | None -> members
        end
      in
      let lvl = if active && ov.ov_degrade then !level else 0 in
      let executed =
        match admitted with
        | [] -> []
        | _ -> (
          let first = execute_members lvl admitted in
          if not (active && ov.ov_shed_policy = Deadline_aware) then first
          else begin
            (* Feasibility refusal: with the batch's priced groups laid
               on top of everything in flight, would each deadline still
               be met? Queries that cannot make it are refused now
               (typed fate) instead of missing later. *)
            let prospective =
              List.mapi
                (fun i (_, (stats : Stats.t)) ->
                  {
                    Scheduler.it_id = 1_000_000 + i;
                    it_submit_s = admit_s;
                    it_jobs = stats.Stats.jobs;
                  })
                first
            in
            let s =
              Scheduler.simulate cluster cfg.c_policy
                (sched_items () @ prospective)
            in
            let infeasible =
              List.concat
                (List.mapi
                   (fun i (mems, _) ->
                     let finish =
                       match Scheduler.placement s (1_000_000 + i) with
                       | Some p -> p.Scheduler.p_finish_s
                       | None -> admit_s
                     in
                     List.filter_map
                       (fun ((a : Workload.arrival), _) ->
                         match deadline_of a with
                         | Some d
                           when finish > a.Workload.a_time_s +. d +. eps ->
                           Some a.Workload.a_id
                         | Some _ | None -> None)
                       mems)
                   first)
            in
            if infeasible = [] then first
            else begin
              let keep, drop =
                List.partition
                  (fun (a : Workload.arrival) ->
                    not (List.mem a.Workload.a_id infeasible))
                  admitted
              in
              List.iter (shed_query b_index admit_s Infeasible) drop;
              match keep with [] -> [] | _ -> execute_members lvl keep
            end
          end)
      in
      commit b_index admit_s lvl executed;
      (* Circuit breaker: K consecutive transient failures (in arrival
         order) open it for a cooldown; deterministic errors and
         successes reset the run. *)
      if active then begin
        match ov.ov_breaker_k with
        | Some k when k > 0 ->
          let outcomes =
            List.concat_map
              (fun (mems, _) ->
                List.map
                  (fun ((a : Workload.arrival), out) ->
                    (a.Workload.a_id, out))
                  mems)
              executed
            |> List.sort (fun (x, _) (y, _) -> compare x y)
          in
          List.iter
            (fun (_, out) ->
              match out with
              | Error e when Engine.error_transient e ->
                incr breaker_consec;
                if !breaker_consec >= k && !breaker_until = None then begin
                  breaker_until :=
                    Some (admit_s +. ov.ov_breaker_cooldown_s);
                  incr breaker_trips;
                  breaker_consec := 0;
                  Trace.span trace ~name:"breaker-open" ~cat:"overload"
                    ~start_s:admit_s ~dur_s:ov.ov_breaker_cooldown_s
                    [ ("consecutive_failures", Json.Int k) ]
                end
              | Error _ | Ok _ -> breaker_consec := 0)
            outcomes
        | Some _ | None -> ()
      end;
      batch_reports :=
        {
          b_index;
          b_open_s = open_s;
          b_admit_s = admit_s;
          b_size = List.length members;
          b_group_sizes = List.map (fun (mems, _) -> List.length mems) executed;
        }
        :: !batch_reports)
    batches;
  let exec_groups = List.rev !committed in
  let batch_reports = List.rev !batch_reports in
  (* The committed shared workflows contend for the cluster's slots. *)
  let sched = Scheduler.simulate cluster cfg.c_policy (sched_items ()) in
  if active && ov.ov_degrade then begin
    let end_clock =
      List.fold_left
        (fun acc (p : Scheduler.placement) ->
          Float.max acc p.Scheduler.p_finish_s)
        !level_since sched.Scheduler.placements
    in
    let dur = Float.max 0.0 (end_clock -. !level_since) in
    time_in_level.(!level) <- time_in_level.(!level) +. dur;
    Trace.span trace
      ~name:(Printf.sprintf "level-%d" !level)
      ~cat:"overload" ~start_s:!level_since ~dur_s:dur []
  end;
  let solo_finish =
    let cursor = ref 0.0 in
    List.map
      (fun ((a : Workload.arrival), res) ->
        let dur =
          match res with
          | Ok (o : Engine.output) -> Stats.est_time_s o.Engine.stats
          | Error _ -> 0.0
        in
        let start = Float.max !cursor a.Workload.a_time_s in
        cursor := start +. dur;
        (a.Workload.a_id, !cursor))
      solo
  in
  let queries_exec =
    List.concat_map
      (fun eg ->
        let size = List.length eg.eg_members in
        let placement = Scheduler.placement sched eg.eg_index in
        let finish, queue =
          match placement with
          | Some p -> (p.Scheduler.p_finish_s, p.Scheduler.p_queue_s)
          | None -> (eg.eg_admit_s, 0.0)
        in
        List.map
          (fun ((a : Workload.arrival), out) ->
            (* Verification sampling: below level 2 every result is
               checked against its solo run; at level 2 only one in
               [ov_verify_sample] is. *)
            let checked =
              eg.eg_level < 2 || ov.ov_verify_sample <= 1
              || a.Workload.a_id mod ov.ov_verify_sample = 0
            in
            let matches =
              (not checked)
              ||
              match (out, List.assoc a.Workload.a_id solo_by_id) with
              | Ok t, Ok (o : Engine.output) ->
                Relops.same_results o.Engine.table t
              | Error _, Error _ -> true
              | _ -> false
            in
            let latency = Float.max 0.0 (finish -. a.Workload.a_time_s) in
            let deadline = deadline_of a in
            let fate =
              match out with
              | Error _ -> Failed
              | Ok _ -> (
                match deadline with
                | Some d when latency > d +. eps -> Deadline_missed
                | Some _ | None -> Completed)
            in
            {
              q_id = a.Workload.a_id;
              q_label = a.Workload.a_label;
              q_arrival_s = a.Workload.a_time_s;
              q_batch = eg.eg_batch;
              q_group = eg.eg_index;
              q_group_size = size;
              q_queue_s =
                Float.max 0.0 (eg.eg_admit_s -. a.Workload.a_time_s)
                +. queue;
              q_latency_s = latency;
              q_rows =
                (match out with Ok t -> Table.cardinality t | Error _ -> 0);
              q_deadline_s = deadline;
              q_fate = fate;
              q_checked = checked;
              q_error =
                (match out with Ok _ -> None | Error e -> Some e);
              q_matches_solo = matches;
            })
          eg.eg_members)
      exec_groups
  in
  let queries_shed =
    List.map
      (fun ((a : Workload.arrival), reason, b_index) ->
        {
          q_id = a.Workload.a_id;
          q_label = a.Workload.a_label;
          q_arrival_s = a.Workload.a_time_s;
          q_batch = b_index;
          q_group = -1;
          q_group_size = 0;
          q_queue_s = 0.0;
          q_latency_s = 0.0;
          q_rows = 0;
          q_deadline_s = deadline_of a;
          q_fate = Shed reason;
          q_checked = false;
          q_error = None;
          q_matches_solo = true;
        })
      (List.rev !shed)
  in
  let queries =
    List.sort (fun a b -> compare a.q_id b.q_id) (queries_exec @ queries_shed)
  in
  let sum_stats f =
    List.fold_left (fun acc eg -> acc + f eg.eg_stats) 0 exec_groups
  in
  let latencies =
    List.filter_map
      (fun q ->
        match q.q_fate with Shed _ -> None | _ -> Some q.q_latency_s)
      queries
  in
  let solo_latencies =
    List.map
      (fun ((a : Workload.arrival), _) ->
        List.assoc a.Workload.a_id solo_finish -. a.Workload.a_time_s)
      solo
  in
  let solo_jobs, solo_bytes =
    List.fold_left
      (fun (j, b) (_, res) ->
        match res with
        | Ok (o : Engine.output) ->
          ( j + Stats.cycles o.Engine.stats,
            b + Stats.total_input_bytes o.Engine.stats )
        | Error _ -> (j, b))
      (0, 0) solo
  in
  let solo_makespan =
    match (workload.Workload.arrivals, List.rev solo_finish) with
    | first :: _, (_, last) :: _ ->
      Float.max 0.0 (last -. first.Workload.a_time_s)
    | _ -> 0.0
  in
  let jobs = sum_stats Stats.cycles in
  let bytes = sum_stats Stats.total_input_bytes in
  let overload_report =
    if not active then None
    else begin
      let count f = List.length (List.filter f queries) in
      let lat fate =
        List.filter_map
          (fun q -> if q.q_fate = fate then Some q.q_latency_s else None)
          queries
      in
      let completed = count (fun q -> q.q_fate = Completed) in
      let completed_lat = lat Completed in
      let missed_lat = lat Deadline_missed in
      Some
        {
          o_completed = completed;
          o_shed_queue = count (fun q -> q.q_fate = Shed Queue_full);
          o_shed_infeasible = count (fun q -> q.q_fate = Shed Infeasible);
          o_shed_breaker = count (fun q -> q.q_fate = Shed Breaker_open);
          o_missed = count (fun q -> q.q_fate = Deadline_missed);
          o_failed = count (fun q -> q.q_fate = Failed);
          o_goodput =
            (match queries with
            | [] -> 0.0
            | _ ->
              float_of_int completed /. float_of_int (List.length queries));
          o_breaker_trips = !breaker_trips;
          o_level_steps = !level_steps;
          o_time_in_level =
            (if ov.ov_degrade then
               List.mapi (fun i s -> (i, s)) (Array.to_list time_in_level)
             else []);
          o_completed_p50_s = percentile 50.0 completed_lat;
          o_completed_p95_s = percentile 95.0 completed_lat;
          o_completed_p99_s = percentile 99.0 completed_lat;
          o_missed_p50_s = percentile 50.0 missed_lat;
          o_missed_p95_s = percentile 95.0 missed_lat;
          o_missed_p99_s = percentile 99.0 missed_lat;
          o_checked = count (fun q -> q.q_checked);
        }
    end
  in
  let optimize_report =
    match opt with
    | None -> None
    | Some (oc, _, _, cache, defense) ->
      Some
        {
          p_policy = Cost_model.policy_name oc.oc_policy;
          p_planned = !planned;
          p_cache = Plan_cache.stats cache;
          p_misestimates = !misestimates;
          p_fallbacks = Defense.fallbacks defense;
          p_breaker = Defense.state_name (Defense.state defense);
        }
  in
  {
    r_kind = cfg.c_kind;
    r_window_s = cfg.c_window_s;
    r_policy = cfg.c_policy;
    r_share = cfg.c_share;
    r_queries = queries;
    r_batches = batch_reports;
    r_jobs = jobs;
    r_input_bytes = bytes;
    r_makespan_s = sched.Scheduler.makespan_s;
    r_utilization = sched.Scheduler.utilization;
    r_latency_mean_s = mean latencies;
    r_latency_p50_s = percentile 50.0 latencies;
    r_latency_p95_s = percentile 95.0 latencies;
    r_latency_p99_s = percentile 99.0 latencies;
    r_latency_max_s = List.fold_left Float.max 0.0 latencies;
    r_solo_jobs = solo_jobs;
    r_solo_input_bytes = solo_bytes;
    r_solo_makespan_s = solo_makespan;
    r_solo_latency_p50_s = percentile 50.0 solo_latencies;
    r_solo_latency_p95_s = percentile 95.0 solo_latencies;
    r_solo_latency_p99_s = percentile 99.0 solo_latencies;
    r_jobs_saved = solo_jobs - jobs;
    r_bytes_saved = solo_bytes - bytes;
    r_all_matched = List.for_all (fun q -> q.q_matches_solo) queries;
    r_errors =
      List.length (List.filter (fun q -> q.q_error <> None) queries);
    r_overload = overload_report;
    r_optimize = optimize_report;
    r_trace = trace;
  }

let pp_group_sizes ppf sizes =
  Fmt.(list ~sep:(any "+") int) ppf sizes

let pp ppf r =
  Fmt.pf ppf
    "@[<v>query server: engine=%s window=%.1fs policy=%s sharing=%s@,"
    (Engine.kind_name r.r_kind) r.r_window_s
    (Scheduler.policy_name r.r_policy)
    (if r.r_share then "on" else "off");
  Fmt.pf ppf "queries: %d in %d batches; group sizes: %a@,"
    (List.length r.r_queries)
    (List.length r.r_batches)
    Fmt.(list ~sep:(any " | ") pp_group_sizes)
    (List.map (fun b -> b.b_group_sizes) r.r_batches);
  Fmt.pf ppf
    "latency: mean %.2fs  p50 %.2fs  p95 %.2fs  p99 %.2fs  max %.2fs@,"
    r.r_latency_mean_s r.r_latency_p50_s r.r_latency_p95_s r.r_latency_p99_s
    r.r_latency_max_s;
  Fmt.pf ppf "cluster: makespan %.2fs  slot utilization %.1f%%@,"
    r.r_makespan_s (100.0 *. r.r_utilization);
  Fmt.pf ppf "server path: %d jobs, %d scan bytes@," r.r_jobs r.r_input_bytes;
  Fmt.pf ppf
    "back-to-back: %d jobs, %d scan bytes, makespan %.2fs, p50 %.2fs@,"
    r.r_solo_jobs r.r_solo_input_bytes r.r_solo_makespan_s
    r.r_solo_latency_p50_s;
  Fmt.pf ppf "saved: %d jobs, %d scan bytes@," r.r_jobs_saved r.r_bytes_saved;
  (match r.r_overload with
  | None -> ()
  | Some o ->
    let n_shed = o.o_shed_queue + o.o_shed_infeasible + o.o_shed_breaker in
    Fmt.pf ppf
      "fates: %d completed, %d missed, %d shed (%d queue-full, %d \
       infeasible, %d breaker), %d failed@,"
      o.o_completed o.o_missed n_shed o.o_shed_queue o.o_shed_infeasible
      o.o_shed_breaker o.o_failed;
    Fmt.pf ppf "goodput: %.1f%% of %d arrivals@," (100.0 *. o.o_goodput)
      (List.length r.r_queries);
    if o.o_completed > 0 then
      Fmt.pf ppf "completed latency: p50 %.2fs  p95 %.2fs  p99 %.2fs@,"
        o.o_completed_p50_s o.o_completed_p95_s o.o_completed_p99_s;
    if o.o_missed > 0 then
      Fmt.pf ppf "missed latency: p50 %.2fs  p95 %.2fs  p99 %.2fs@,"
        o.o_missed_p50_s o.o_missed_p95_s o.o_missed_p99_s;
    (match o.o_time_in_level with
    | [] -> ()
    | levels ->
      Fmt.pf ppf "degradation: %d level steps; time in levels %a@,"
        o.o_level_steps
        Fmt.(
          list ~sep:(any "  ") (fun ppf (l, s) -> pf ppf "L%d=%.1fs" l s))
        levels);
    if o.o_breaker_trips > 0 then
      Fmt.pf ppf "breaker: %d trip%s@," o.o_breaker_trips
        (if o.o_breaker_trips = 1 then "" else "s");
    Fmt.pf ppf "verified: %d of %d results checked against solo@,"
      o.o_checked (List.length r.r_queries));
  (match r.r_optimize with
  | None -> ()
  | Some p ->
    Fmt.pf ppf "optimizer: policy %s, %d group(s) planned; cache: %a@,"
      p.p_policy p.p_planned Plan_cache.pp_stats p.p_cache;
    Fmt.pf ppf
      "optimizer defense: %d misestimate(s), %d fallback(s), breaker %s@,"
      p.p_misestimates p.p_fallbacks p.p_breaker);
  if r.r_errors > 0 then Fmt.pf ppf "errors: %d@," r.r_errors;
  Fmt.pf ppf "results: %s@]"
    (if r.r_all_matched then
       Printf.sprintf "all %d match solo runs" (List.length r.r_queries)
     else "DIVERGED from solo runs")

let pp_detail ppf r =
  Fmt.pf ppf "@[<v>";
  List.iter
    (fun q ->
      Fmt.pf ppf
        "q%-3d %-14s arr %7.2fs  batch %d  group %d(x%d)  queue %6.2fs  \
         latency %7.2fs  rows %4d  %s@,"
        q.q_id q.q_label q.q_arrival_s q.q_batch q.q_group q.q_group_size
        q.q_queue_s q.q_latency_s q.q_rows
        (match q.q_fate with
        | Shed reason -> "SHED (" ^ shed_reason_name reason ^ ")"
        | Failed | Completed | Deadline_missed -> (
          match q.q_error with
          | Some e -> "error: " ^ Engine.error_message e
          | None ->
            let base =
              if not q.q_matches_solo then "DIVERGED"
              else if q.q_checked then "ok"
              else "ok (unchecked)"
            in
            if q.q_fate = Deadline_missed then base ^ " MISSED" else base)))
    r.r_queries;
  Fmt.pf ppf "%a@]" pp r

let query_to_json ~active q =
  Json.Obj
    ([
       ("id", Json.Int q.q_id);
       ("label", Json.String q.q_label);
       ("arrival_s", Json.Float q.q_arrival_s);
       ("batch", Json.Int q.q_batch);
       ("group", Json.Int q.q_group);
       ("group_size", Json.Int q.q_group_size);
       ("queue_s", Json.Float q.q_queue_s);
       ("latency_s", Json.Float q.q_latency_s);
       ("rows", Json.Int q.q_rows);
       ( "error",
         match q.q_error with
         | None -> Json.Null
         | Some e -> Json.String (Engine.error_message e) );
       ("matches_solo", Json.Bool q.q_matches_solo);
     ]
    @
    if active then
      [
        ( "deadline_s",
          match q.q_deadline_s with
          | None -> Json.Null
          | Some d -> Json.Float d );
        ("fate", Json.String (fate_name q.q_fate));
        ("checked", Json.Bool q.q_checked);
      ]
    else [])

let batch_to_json b =
  Json.Obj
    [
      ("index", Json.Int b.b_index);
      ("open_s", Json.Float b.b_open_s);
      ("admit_s", Json.Float b.b_admit_s);
      ("queries", Json.Int b.b_size);
      ("group_sizes", Json.List (List.map (fun n -> Json.Int n) b.b_group_sizes));
    ]

let overload_to_json o =
  Json.Obj
    [
      ("completed", Json.Int o.o_completed);
      ("shed", Json.Int (o.o_shed_queue + o.o_shed_infeasible + o.o_shed_breaker));
      ("shed_queue_full", Json.Int o.o_shed_queue);
      ("shed_infeasible", Json.Int o.o_shed_infeasible);
      ("shed_breaker", Json.Int o.o_shed_breaker);
      ("missed", Json.Int o.o_missed);
      ("failed", Json.Int o.o_failed);
      ("goodput", Json.Float o.o_goodput);
      ("breaker_trips", Json.Int o.o_breaker_trips);
      ("level_steps", Json.Int o.o_level_steps);
      ( "time_in_level_s",
        Json.List
          (List.map (fun (_, s) -> Json.Float s) o.o_time_in_level) );
      ( "completed_latency_s",
        Json.Obj
          [
            ("p50", Json.Float o.o_completed_p50_s);
            ("p95", Json.Float o.o_completed_p95_s);
            ("p99", Json.Float o.o_completed_p99_s);
          ] );
      ( "missed_latency_s",
        Json.Obj
          [
            ("p50", Json.Float o.o_missed_p50_s);
            ("p95", Json.Float o.o_missed_p95_s);
            ("p99", Json.Float o.o_missed_p99_s);
          ] );
      ("checked", Json.Int o.o_checked);
    ]

let optimize_to_json p =
  Json.Obj
    [
      ("policy", Json.String p.p_policy);
      ("planned", Json.Int p.p_planned);
      ("cache", Plan_cache.stats_to_json p.p_cache);
      ("misestimates", Json.Int p.p_misestimates);
      ("fallbacks", Json.Int p.p_fallbacks);
      ("breaker", Json.String p.p_breaker);
    ]

let to_json r =
  let active = r.r_overload <> None in
  Json.Obj
    ([
       ("engine", Json.String (Engine.kind_name r.r_kind));
       ("window_s", Json.Float r.r_window_s);
       ("policy", Json.String (Scheduler.policy_name r.r_policy));
       ("sharing", Json.Bool r.r_share);
       ("queries", Json.List (List.map (query_to_json ~active) r.r_queries));
       ("batches", Json.List (List.map batch_to_json r.r_batches));
       ("jobs", Json.Int r.r_jobs);
       ("input_bytes", Json.Int r.r_input_bytes);
       ("makespan_s", Json.Float r.r_makespan_s);
       ("utilization", Json.Float r.r_utilization);
       ( "latency_s",
         Json.Obj
           [
             ("mean", Json.Float r.r_latency_mean_s);
             ("p50", Json.Float r.r_latency_p50_s);
             ("p95", Json.Float r.r_latency_p95_s);
             ("p99", Json.Float r.r_latency_p99_s);
             ("max", Json.Float r.r_latency_max_s);
           ] );
       ( "back_to_back",
         Json.Obj
           [
             ("jobs", Json.Int r.r_solo_jobs);
             ("input_bytes", Json.Int r.r_solo_input_bytes);
             ("makespan_s", Json.Float r.r_solo_makespan_s);
             ("latency_p50_s", Json.Float r.r_solo_latency_p50_s);
             ("latency_p95_s", Json.Float r.r_solo_latency_p95_s);
             ("latency_p99_s", Json.Float r.r_solo_latency_p99_s);
           ] );
       ("jobs_saved", Json.Int r.r_jobs_saved);
       ("bytes_saved", Json.Int r.r_bytes_saved);
       ("all_matched", Json.Bool r.r_all_matched);
       ("errors", Json.Int r.r_errors);
     ]
    @ (match r.r_overload with
      | None -> []
      | Some o -> [ ("overload", overload_to_json o) ])
    @
    match r.r_optimize with
    | None -> []
    | Some p -> [ ("optimize", optimize_to_json p) ])
