module Engine = Rapida_core.Engine
module Batch_exec = Rapida_core.Batch_exec
module Plan_util = Rapida_core.Plan_util
module Analytical = Rapida_sparql.Analytical
module Scheduler = Rapida_mapred.Scheduler
module Stats = Rapida_mapred.Stats
module Json = Rapida_mapred.Json
module Table = Rapida_relational.Table
module Relops = Rapida_relational.Relops

type config = {
  c_kind : Engine.kind;
  c_window_s : float;
  c_policy : Scheduler.policy;
  c_share : bool;
  c_options : Plan_util.options;
}

let config ?(window_s = 5.0) ?(policy = Scheduler.Fair) ?(share = true)
    ?(options = Plan_util.default_options) kind =
  {
    c_kind = kind;
    c_window_s = window_s;
    c_policy = policy;
    c_share = share;
    c_options = options;
  }

type query_report = {
  q_id : int;
  q_label : string;
  q_arrival_s : float;
  q_batch : int;
  q_group : int;
  q_group_size : int;
  q_queue_s : float;
  q_latency_s : float;
  q_rows : int;
  q_error : Engine.error option;
  q_matches_solo : bool;
}

type batch_report = {
  b_index : int;
  b_open_s : float;
  b_admit_s : float;
  b_size : int;
  b_group_sizes : int list;
}

type t = {
  r_kind : Engine.kind;
  r_window_s : float;
  r_policy : Scheduler.policy;
  r_share : bool;
  r_queries : query_report list;
  r_batches : batch_report list;
  r_jobs : int;
  r_input_bytes : int;
  r_makespan_s : float;
  r_utilization : float;
  r_latency_mean_s : float;
  r_latency_p50_s : float;
  r_latency_p95_s : float;
  r_latency_p99_s : float;
  r_latency_max_s : float;
  r_solo_jobs : int;
  r_solo_input_bytes : int;
  r_solo_makespan_s : float;
  r_solo_latency_p50_s : float;
  r_solo_latency_p95_s : float;
  r_solo_latency_p99_s : float;
  r_jobs_saved : int;
  r_bytes_saved : int;
  r_all_matched : bool;
  r_errors : int;
}

let percentile p xs =
  match List.sort compare xs with
  | [] -> 0.0
  | sorted ->
    let n = List.length sorted in
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
    List.nth sorted (min (max rank 1) n - 1)

let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

(* Admission windows over the sorted arrival stream: a window opens at
   the first pending arrival, collects everything arriving within
   [window_s], and admits the batch when it closes. *)
let batch_arrivals window_s arrivals =
  let rec go idx = function
    | [] -> []
    | (a : Workload.arrival) :: _ as pending ->
      let close = a.Workload.a_time_s +. window_s in
      let members, rest =
        List.partition
          (fun (x : Workload.arrival) ->
            x.Workload.a_time_s <= close +. 1e-9)
          pending
      in
      (idx, a.Workload.a_time_s, close, members) :: go (idx + 1) rest
  in
  go 0 arrivals

(* Sharing off: every admitted query is its own group; [run_group] then
   takes the exact solo [Engine.execute] path for each. *)
let solo_groups queries =
  List.mapi
    (fun i (q : Analytical.t) ->
      {
        Batch_exec.g_members =
          [
            {
              Batch_exec.m_index = i;
              m_query = q;
              m_subqueries = q.Analytical.subqueries;
            };
          ];
        g_composite = None;
      })
    queries

(* One executed overlap group: its arrivals (member order), per-member
   outcomes, and the priced shared workflow. *)
type exec_group = {
  eg_index : int;
  eg_batch : int;
  eg_admit_s : float;
  eg_members : (Workload.arrival * (Table.t, Engine.error) result) list;
  eg_stats : Stats.t;
}

let run cfg input (workload : Workload.t) =
  let session = Engine.prepare cfg.c_kind input in
  let batches = batch_arrivals cfg.c_window_s workload.Workload.arrivals in
  (* Execute every batch's overlap groups; a fresh context per group so
     each shared workflow's trace and counters stand alone. *)
  let exec_groups, batch_reports =
    let next = ref 0 in
    List.fold_left
      (fun (egs, brs) (b_index, open_s, admit_s, members) ->
        let queries =
          List.map (fun a -> a.Workload.a_query) members
        in
        let groups =
          if cfg.c_share then Batch_exec.group_queries cfg.c_kind queries
          else solo_groups queries
        in
        let executed =
          List.map
            (fun (g : Batch_exec.group) ->
              let ctx = Plan_util.context cfg.c_options in
              let res = Batch_exec.run_group session ctx g in
              let index = !next in
              incr next;
              {
                eg_index = index;
                eg_batch = b_index;
                eg_admit_s = admit_s;
                eg_members =
                  List.map2
                    (fun (m : Batch_exec.member) out ->
                      (List.nth members m.Batch_exec.m_index, out))
                    g.Batch_exec.g_members res.Batch_exec.outputs;
                eg_stats = res.Batch_exec.stats;
              })
            groups
        in
        let br =
          {
            b_index;
            b_open_s = open_s;
            b_admit_s = admit_s;
            b_size = List.length members;
            b_group_sizes =
              List.map (fun eg -> List.length eg.eg_members) executed;
          }
        in
        (egs @ executed, brs @ [ br ]))
      ([], []) batches
  in
  (* The shared workflows contend for the cluster's slots. *)
  let sched =
    Scheduler.simulate cfg.c_options.Plan_util.cluster cfg.c_policy
      (List.map
         (fun eg ->
           {
             Scheduler.it_id = eg.eg_index;
             it_submit_s = eg.eg_admit_s;
             it_jobs = eg.eg_stats.Stats.jobs;
           })
         exec_groups)
  in
  (* Back-to-back baseline: every query solo, sequentially, same
     cluster — the savings denominator and the identity reference. *)
  let solo =
    List.map
      (fun (a : Workload.arrival) ->
        let ctx = Plan_util.context cfg.c_options in
        (a, Engine.execute session ctx a.Workload.a_query))
      workload.Workload.arrivals
  in
  let solo_finish =
    let cursor = ref 0.0 in
    List.map
      (fun ((a : Workload.arrival), res) ->
        let dur =
          match res with
          | Ok (o : Engine.output) -> Stats.est_time_s o.Engine.stats
          | Error _ -> 0.0
        in
        let start = Float.max !cursor a.Workload.a_time_s in
        cursor := start +. dur;
        (a.Workload.a_id, !cursor))
      solo
  in
  let queries =
    List.concat_map
      (fun eg ->
        let size = List.length eg.eg_members in
        let placement = Scheduler.placement sched eg.eg_index in
        let finish, queue =
          match placement with
          | Some p -> (p.Scheduler.p_finish_s, p.Scheduler.p_queue_s)
          | None -> (eg.eg_admit_s, 0.0)
        in
        List.map
          (fun ((a : Workload.arrival), out) ->
            let solo_out =
              List.assoc a.Workload.a_id
                (List.map
                   (fun ((s : Workload.arrival), r) ->
                     (s.Workload.a_id, r))
                   solo)
            in
            let matches =
              match (out, solo_out) with
              | Ok t, Ok (o : Engine.output) ->
                Relops.same_results o.Engine.table t
              | Error _, Error _ -> true
              | _ -> false
            in
            {
              q_id = a.Workload.a_id;
              q_label = a.Workload.a_label;
              q_arrival_s = a.Workload.a_time_s;
              q_batch = eg.eg_batch;
              q_group = eg.eg_index;
              q_group_size = size;
              q_queue_s =
                Float.max 0.0 (eg.eg_admit_s -. a.Workload.a_time_s)
                +. queue;
              q_latency_s = Float.max 0.0 (finish -. a.Workload.a_time_s);
              q_rows =
                (match out with Ok t -> Table.cardinality t | Error _ -> 0);
              q_error =
                (match out with Ok _ -> None | Error e -> Some e);
              q_matches_solo = matches;
            })
          eg.eg_members)
      exec_groups
    |> List.sort (fun a b -> compare a.q_id b.q_id)
  in
  let sum_stats f =
    List.fold_left (fun acc eg -> acc + f eg.eg_stats) 0 exec_groups
  in
  let latencies = List.map (fun q -> q.q_latency_s) queries in
  let solo_latencies =
    List.map
      (fun ((a : Workload.arrival), _) ->
        List.assoc a.Workload.a_id solo_finish -. a.Workload.a_time_s)
      solo
  in
  let solo_jobs, solo_bytes =
    List.fold_left
      (fun (j, b) (_, res) ->
        match res with
        | Ok (o : Engine.output) ->
          ( j + Stats.cycles o.Engine.stats,
            b + Stats.total_input_bytes o.Engine.stats )
        | Error _ -> (j, b))
      (0, 0) solo
  in
  let solo_makespan =
    match (workload.Workload.arrivals, List.rev solo_finish) with
    | first :: _, (_, last) :: _ ->
      Float.max 0.0 (last -. first.Workload.a_time_s)
    | _ -> 0.0
  in
  let jobs = sum_stats Stats.cycles in
  let bytes = sum_stats Stats.total_input_bytes in
  {
    r_kind = cfg.c_kind;
    r_window_s = cfg.c_window_s;
    r_policy = cfg.c_policy;
    r_share = cfg.c_share;
    r_queries = queries;
    r_batches = batch_reports;
    r_jobs = jobs;
    r_input_bytes = bytes;
    r_makespan_s = sched.Scheduler.makespan_s;
    r_utilization = sched.Scheduler.utilization;
    r_latency_mean_s = mean latencies;
    r_latency_p50_s = percentile 50.0 latencies;
    r_latency_p95_s = percentile 95.0 latencies;
    r_latency_p99_s = percentile 99.0 latencies;
    r_latency_max_s = List.fold_left Float.max 0.0 latencies;
    r_solo_jobs = solo_jobs;
    r_solo_input_bytes = solo_bytes;
    r_solo_makespan_s = solo_makespan;
    r_solo_latency_p50_s = percentile 50.0 solo_latencies;
    r_solo_latency_p95_s = percentile 95.0 solo_latencies;
    r_solo_latency_p99_s = percentile 99.0 solo_latencies;
    r_jobs_saved = solo_jobs - jobs;
    r_bytes_saved = solo_bytes - bytes;
    r_all_matched = List.for_all (fun q -> q.q_matches_solo) queries;
    r_errors =
      List.length (List.filter (fun q -> q.q_error <> None) queries);
  }

let pp_group_sizes ppf sizes =
  Fmt.(list ~sep:(any "+") int) ppf sizes

let pp ppf r =
  Fmt.pf ppf
    "@[<v>query server: engine=%s window=%.1fs policy=%s sharing=%s@,"
    (Engine.kind_name r.r_kind) r.r_window_s
    (Scheduler.policy_name r.r_policy)
    (if r.r_share then "on" else "off");
  Fmt.pf ppf "queries: %d in %d batches; group sizes: %a@,"
    (List.length r.r_queries)
    (List.length r.r_batches)
    Fmt.(list ~sep:(any " | ") pp_group_sizes)
    (List.map (fun b -> b.b_group_sizes) r.r_batches);
  Fmt.pf ppf
    "latency: mean %.2fs  p50 %.2fs  p95 %.2fs  p99 %.2fs  max %.2fs@,"
    r.r_latency_mean_s r.r_latency_p50_s r.r_latency_p95_s r.r_latency_p99_s
    r.r_latency_max_s;
  Fmt.pf ppf "cluster: makespan %.2fs  slot utilization %.1f%%@,"
    r.r_makespan_s (100.0 *. r.r_utilization);
  Fmt.pf ppf "server path: %d jobs, %d scan bytes@," r.r_jobs r.r_input_bytes;
  Fmt.pf ppf
    "back-to-back: %d jobs, %d scan bytes, makespan %.2fs, p50 %.2fs@,"
    r.r_solo_jobs r.r_solo_input_bytes r.r_solo_makespan_s
    r.r_solo_latency_p50_s;
  Fmt.pf ppf "saved: %d jobs, %d scan bytes@," r.r_jobs_saved r.r_bytes_saved;
  if r.r_errors > 0 then Fmt.pf ppf "errors: %d@," r.r_errors;
  Fmt.pf ppf "results: %s@]"
    (if r.r_all_matched then
       Printf.sprintf "all %d match solo runs" (List.length r.r_queries)
     else "DIVERGED from solo runs")

let pp_detail ppf r =
  Fmt.pf ppf "@[<v>";
  List.iter
    (fun q ->
      Fmt.pf ppf
        "q%-3d %-14s arr %7.2fs  batch %d  group %d(x%d)  queue %6.2fs  \
         latency %7.2fs  rows %4d  %s@,"
        q.q_id q.q_label q.q_arrival_s q.q_batch q.q_group q.q_group_size
        q.q_queue_s q.q_latency_s q.q_rows
        (match q.q_error with
        | Some e -> "error: " ^ Engine.error_message e
        | None -> if q.q_matches_solo then "ok" else "DIVERGED"))
    r.r_queries;
  Fmt.pf ppf "%a@]" pp r

let query_to_json q =
  Json.Obj
    [
      ("id", Json.Int q.q_id);
      ("label", Json.String q.q_label);
      ("arrival_s", Json.Float q.q_arrival_s);
      ("batch", Json.Int q.q_batch);
      ("group", Json.Int q.q_group);
      ("group_size", Json.Int q.q_group_size);
      ("queue_s", Json.Float q.q_queue_s);
      ("latency_s", Json.Float q.q_latency_s);
      ("rows", Json.Int q.q_rows);
      ( "error",
        match q.q_error with
        | None -> Json.Null
        | Some e -> Json.String (Engine.error_message e) );
      ("matches_solo", Json.Bool q.q_matches_solo);
    ]

let batch_to_json b =
  Json.Obj
    [
      ("index", Json.Int b.b_index);
      ("open_s", Json.Float b.b_open_s);
      ("admit_s", Json.Float b.b_admit_s);
      ("queries", Json.Int b.b_size);
      ("group_sizes", Json.List (List.map (fun n -> Json.Int n) b.b_group_sizes));
    ]

let to_json r =
  Json.Obj
    [
      ("engine", Json.String (Engine.kind_name r.r_kind));
      ("window_s", Json.Float r.r_window_s);
      ("policy", Json.String (Scheduler.policy_name r.r_policy));
      ("sharing", Json.Bool r.r_share);
      ("queries", Json.List (List.map query_to_json r.r_queries));
      ("batches", Json.List (List.map batch_to_json r.r_batches));
      ("jobs", Json.Int r.r_jobs);
      ("input_bytes", Json.Int r.r_input_bytes);
      ("makespan_s", Json.Float r.r_makespan_s);
      ("utilization", Json.Float r.r_utilization);
      ( "latency_s",
        Json.Obj
          [
            ("mean", Json.Float r.r_latency_mean_s);
            ("p50", Json.Float r.r_latency_p50_s);
            ("p95", Json.Float r.r_latency_p95_s);
            ("p99", Json.Float r.r_latency_p99_s);
            ("max", Json.Float r.r_latency_max_s);
          ] );
      ( "back_to_back",
        Json.Obj
          [
            ("jobs", Json.Int r.r_solo_jobs);
            ("input_bytes", Json.Int r.r_solo_input_bytes);
            ("makespan_s", Json.Float r.r_solo_makespan_s);
            ("latency_p50_s", Json.Float r.r_solo_latency_p50_s);
            ("latency_p95_s", Json.Float r.r_solo_latency_p95_s);
            ("latency_p99_s", Json.Float r.r_solo_latency_p99_s);
          ] );
      ("jobs_saved", Json.Int r.r_jobs_saved);
      ("bytes_saved", Json.Int r.r_bytes_saved);
      ("all_matched", Json.Bool r.r_all_matched);
      ("errors", Json.Int r.r_errors);
    ]
