module Analytical = Rapida_sparql.Analytical
module Catalog = Rapida_queries.Catalog
module Prng = Rapida_datagen.Prng

type arrival = {
  a_id : int;
  a_time_s : float;
  a_label : string;
  a_deadline_s : float option;
  a_query : Analytical.t;
}

type t = { arrivals : arrival list }

let size t = List.length t.arrivals

let span_s t =
  List.fold_left (fun acc a -> Float.max acc a.a_time_s) 0.0 t.arrivals

let has_deadlines t =
  List.exists (fun a -> a.a_deadline_s <> None) t.arrivals

(* Sort by time (stable on spec order for ties) and assign dense ids —
   the identity every report keys on. *)
let of_specs specs =
  let sorted =
    List.stable_sort
      (fun (ta, _, _, _) (tb, _, _, _) -> compare ta tb)
      specs
  in
  {
    arrivals =
      List.mapi
        (fun i (t, label, deadline, q) ->
          {
            a_id = i;
            a_time_s = t;
            a_label = label;
            a_deadline_s = deadline;
            a_query = q;
          })
        sorted;
  }

let read_file path =
  match open_in path with
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
    |> Result.ok
  | exception Sys_error msg -> Error (Printf.sprintf "cannot read %s" msg)

let split_words line =
  String.split_on_char ' ' (String.map (function '\t' -> ' ' | c -> c) line)
  |> List.filter (fun w -> w <> "")

(* A parsed-query cache keyed by resolved path: a workload referencing
   the same [@FILE] on many lines reads and parses it once, and a read
   failure is reported against each referencing line's number instead of
   re-probing the filesystem. *)
let cached_query cache path =
  match Hashtbl.find_opt cache path with
  | Some r -> r
  | None ->
    let r =
      match read_file path with
      | Error _ as e -> e
      | Ok src -> (
        match Analytical.parse src with
        | Error msg -> Error (Printf.sprintf "%s: %s" path msg)
        | Ok q -> Ok q)
    in
    Hashtbl.add cache path r;
    r

(* Trailing options after TIME QUERYREF: at most one bare LABEL word and
   at most one [deadline=SECONDS] pair, in either order. *)
let parse_trailing ~fail ~default_label rest =
  let rec go label deadline = function
    | [] -> Ok (Option.value ~default:default_label label, deadline)
    | w :: rest -> (
      match String.index_opt w '=' with
      | Some i when String.sub w 0 i = "deadline" -> (
        if deadline <> None then fail "duplicate deadline"
        else
          let v = String.sub w (i + 1) (String.length w - i - 1) in
          match float_of_string_opt v with
          | Some d when Float.is_finite d && d > 0.0 ->
            go label (Some d) rest
          | Some _ | None ->
            fail
              (Printf.sprintf
                 "bad deadline %S (expected a positive number of seconds)" v))
      | Some _ -> fail (Printf.sprintf "unknown option %S" w)
      | None ->
        if label <> None then fail "expected TIME QUERY [LABEL] [deadline=S]"
        else go (Some w) deadline rest)
  in
  go None None rest

let parse_line ~cache ~dir ~lineno line =
  let fail msg = Error (Printf.sprintf "workload line %d: %s" lineno msg) in
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  match split_words line with
  | [] -> Ok None
  | time :: qref :: rest -> (
    let trailing default = parse_trailing ~fail ~default_label:default rest in
    match float_of_string_opt time with
    | None -> fail (Printf.sprintf "bad arrival time %S" time)
    | Some t when t < 0.0 || not (Float.is_finite t) ->
      (* Catches negative, NaN, and infinite times alike: NaN fails both
         the comparison and the finiteness test. *)
      fail (Printf.sprintf "bad arrival time %S" time)
    | Some t ->
      if String.length qref > 1 && qref.[0] = '@' then (
        let path = String.sub qref 1 (String.length qref - 1) in
        let resolved =
          if Filename.is_relative path then Filename.concat dir path else path
        in
        match cached_query cache resolved with
        | Error msg -> fail msg
        | Ok q ->
          Result.map
            (fun (label, deadline) -> Some (t, label, deadline, q))
            (trailing (Filename.basename path)))
      else (
        match Catalog.find qref with
        | None -> fail (Printf.sprintf "unknown catalog query %s" qref)
        | Some entry ->
          Result.map
            (fun (label, deadline) ->
              Some (t, label, deadline, Catalog.parse entry))
            (trailing entry.Catalog.id)))
  | _ -> fail "expected TIME QUERY [LABEL] [deadline=S]"

let parse ~dir src =
  let cache = Hashtbl.create 8 in
  let lines = String.split_on_char '\n' src in
  let rec go lineno acc = function
    | [] -> Ok (of_specs (List.rev acc))
    | line :: rest -> (
      match parse_line ~cache ~dir ~lineno line with
      | Error _ as e -> e
      | Ok None -> go (lineno + 1) acc rest
      | Ok (Some spec) -> go (lineno + 1) (spec :: acc) rest)
  in
  match go 1 [] lines with
  | Ok { arrivals = [] } -> Error "empty workload"
  | r -> r

let of_string src = parse ~dir:"." src

let load path =
  match read_file path with
  | Error _ as e -> e
  | Ok src -> parse ~dir:(Filename.dirname path) src

let of_entries ?deadline_s specs =
  of_specs
    (List.map
       (fun (t, e) -> (t, e.Catalog.id, deadline_s, Catalog.parse e))
       specs)

type gen_error =
  | Empty_pool
  | Bad_count of int
  | Bad_mean_gap of float
  | Bad_deadline of float

let gen_error_message = function
  | Empty_pool -> "workload generator: empty query pool"
  | Bad_count n ->
    Printf.sprintf "workload generator: arrival count must be positive (got %d)"
      n
  | Bad_mean_gap g ->
    Printf.sprintf
      "workload generator: mean gap must be a positive number of seconds \
       (got %g)"
      g
  | Bad_deadline d ->
    Printf.sprintf
      "workload generator: deadline must be a positive number of seconds \
       (got %g)"
      d

let generate ~seed ~n ~mean_gap_s ?deadline_s ?pool () =
  let bad_float f = (not (Float.is_finite f)) || f <= 0.0 in
  if n <= 0 then Error (Bad_count n)
  else if bad_float mean_gap_s then Error (Bad_mean_gap mean_gap_s)
  else
    match deadline_s with
    | Some d when bad_float d -> Error (Bad_deadline d)
    | _ -> (
      match pool with
      | Some [] -> Error Empty_pool
      | (Some (_ :: _) | None) as pool ->
        let pool =
          match pool with
          | Some entries -> entries
          | None -> Catalog.by_dataset Catalog.Bsbm
        in
        let rng = Prng.create ~seed in
        let rec draw i clock acc =
          if i >= n then List.rev acc
          else
            (* Exponential inter-arrival gaps: a Poisson arrival process,
               the standard open-loop workload model. [Prng.float rng 1.0]
               is in [0, 1), so the log argument stays positive. *)
            let gap = -.mean_gap_s *. log (1.0 -. Prng.float rng 1.0) in
            let clock = if i = 0 then 0.0 else clock +. gap in
            let entry = Prng.pick rng pool in
            draw (i + 1) clock ((clock, entry) :: acc)
        in
        Ok (of_entries ?deadline_s (draw 0 0.0 [])))

let generate_exn ~seed ~n ~mean_gap_s ?deadline_s ?pool () =
  match generate ~seed ~n ~mean_gap_s ?deadline_s ?pool () with
  | Ok wl -> wl
  | Error e -> invalid_arg (gen_error_message e)

let pp ppf t =
  Fmt.pf ppf "@[<v>";
  List.iter
    (fun a ->
      Fmt.pf ppf "%8.2fs  q%-3d %s%s@," a.a_time_s a.a_id a.a_label
        (match a.a_deadline_s with
        | None -> ""
        | Some d -> Printf.sprintf "  deadline=%g" d))
    t.arrivals;
  Fmt.pf ppf "%d queries over %.2fs@]" (size t) (span_s t)
