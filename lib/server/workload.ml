module Analytical = Rapida_sparql.Analytical
module Catalog = Rapida_queries.Catalog
module Prng = Rapida_datagen.Prng

type arrival = {
  a_id : int;
  a_time_s : float;
  a_label : string;
  a_query : Analytical.t;
}

type t = { arrivals : arrival list }

let size t = List.length t.arrivals

let span_s t =
  List.fold_left (fun acc a -> Float.max acc a.a_time_s) 0.0 t.arrivals

(* Sort by time (stable on spec order for ties) and assign dense ids —
   the identity every report keys on. *)
let of_specs specs =
  let sorted =
    List.stable_sort
      (fun (ta, _, _) (tb, _, _) -> compare ta tb)
      specs
  in
  {
    arrivals =
      List.mapi
        (fun i (t, label, q) ->
          { a_id = i; a_time_s = t; a_label = label; a_query = q })
        sorted;
  }

let read_file path =
  match open_in path with
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
    |> Result.ok
  | exception Sys_error msg -> Error (Printf.sprintf "cannot read %s" msg)

let split_words line =
  String.split_on_char ' ' (String.map (function '\t' -> ' ' | c -> c) line)
  |> List.filter (fun w -> w <> "")

let parse_line ~dir ~lineno line =
  let fail msg = Error (Printf.sprintf "workload line %d: %s" lineno msg) in
  let line =
    match String.index_opt line '#' with
    | Some i -> String.sub line 0 i
    | None -> line
  in
  match split_words line with
  | [] -> Ok None
  | time :: qref :: rest -> (
    let label_of default = match rest with [ l ] -> Ok l | [] -> Ok default
      | _ -> fail "expected TIME QUERY [LABEL]"
    in
    match float_of_string_opt time with
    | None -> fail (Printf.sprintf "bad arrival time %S" time)
    | Some t when t < 0.0 || not (Float.is_finite t) ->
      fail (Printf.sprintf "bad arrival time %S" time)
    | Some t ->
      if String.length qref > 1 && qref.[0] = '@' then (
        let path = String.sub qref 1 (String.length qref - 1) in
        let resolved =
          if Filename.is_relative path then Filename.concat dir path else path
        in
        match read_file resolved with
        | Error msg -> fail msg
        | Ok src -> (
          match Analytical.parse src with
          | Error msg -> fail (Printf.sprintf "%s: %s" path msg)
          | Ok q ->
            Result.map
              (fun label -> Some (t, label, q))
              (label_of (Filename.basename path))))
      else (
        match Catalog.find qref with
        | None -> fail (Printf.sprintf "unknown catalog query %s" qref)
        | Some entry ->
          Result.map
            (fun label -> Some (t, label, Catalog.parse entry))
            (label_of entry.Catalog.id)))
  | _ -> fail "expected TIME QUERY [LABEL]"

let parse ~dir src =
  let lines = String.split_on_char '\n' src in
  let rec go lineno acc = function
    | [] -> Ok (of_specs (List.rev acc))
    | line :: rest -> (
      match parse_line ~dir ~lineno line with
      | Error _ as e -> e
      | Ok None -> go (lineno + 1) acc rest
      | Ok (Some spec) -> go (lineno + 1) (spec :: acc) rest)
  in
  match go 1 [] lines with
  | Ok { arrivals = [] } -> Error "empty workload"
  | r -> r

let of_string src = parse ~dir:"." src

let load path =
  match read_file path with
  | Error _ as e -> e
  | Ok src -> parse ~dir:(Filename.dirname path) src

let of_entries specs =
  of_specs
    (List.map (fun (t, e) -> (t, e.Catalog.id, Catalog.parse e)) specs)

let generate ~seed ~n ~mean_gap_s ?pool () =
  let pool =
    match pool with
    | Some (_ :: _ as entries) -> entries
    | Some [] | None -> Catalog.by_dataset Catalog.Bsbm
  in
  let rng = Prng.create ~seed in
  let rec draw i clock acc =
    if i >= n then List.rev acc
    else
      (* Exponential inter-arrival gaps: a Poisson arrival process, the
         standard open-loop workload model. [Prng.float rng 1.0] is in
         [0, 1), so the log argument stays positive. *)
      let gap = -.mean_gap_s *. log (1.0 -. Prng.float rng 1.0) in
      let clock = if i = 0 then 0.0 else clock +. gap in
      let entry = Prng.pick rng pool in
      draw (i + 1) clock ((clock, entry) :: acc)
  in
  of_entries (draw 0 0.0 [])

let pp ppf t =
  Fmt.pf ppf "@[<v>";
  List.iter
    (fun a ->
      Fmt.pf ppf "%8.2fs  q%-3d %s@," a.a_time_s a.a_id a.a_label)
    t.arrivals;
  Fmt.pf ppf "%d queries over %.2fs@]" (size t) (span_s t)
