(** Workload specifications for the query server: which analytical
    queries arrive, and when.

    A workload is a time-ordered stream of arrivals. It comes from a
    workload file ({!load} / {!of_string} — one arrival per line), or
    from the deterministic generator ({!generate} — Poisson-like
    arrivals over a catalog pool, seeded so every run of a benchmark
    sees the same stream).

    Workload file format, one arrival per line:

    {v
    # comment (blank lines ignored)
    0.0  MG1          # catalog query id
    2.5  @path/to.rq  # SPARQL file, label = file name
    4.0  MG2 hot-mg2  # optional explicit label
    v}

    Times are seconds, non-negative, in any order (arrivals are sorted);
    query references are catalog ids or [@FILE] paths. *)

module Analytical = Rapida_sparql.Analytical
module Catalog = Rapida_queries.Catalog

type arrival = {
  a_id : int;  (** dense index in time order — the server's query id *)
  a_time_s : float;  (** arrival time on the simulated clock *)
  a_label : string;  (** catalog id, file name, or explicit label *)
  a_query : Analytical.t;
}

type t = { arrivals : arrival list  (** sorted by time, then spec order *) }

val size : t -> int

(** Time of the last arrival (0 for an empty workload). *)
val span_s : t -> float

(** [of_string src] parses workload text. [@FILE] query references are
    read relative to the current directory. Errors carry the offending
    line number. *)
val of_string : string -> (t, string) result

(** [load path] reads and parses a workload file; [@FILE] references
    resolve relative to the workload file's directory. *)
val load : string -> (t, string) result

(** [of_entries specs] builds a workload from (time, catalog entry)
    pairs directly. *)
val of_entries : (float * Catalog.entry) list -> t

(** [generate ~seed ~n ~mean_gap_s ?pool ()] draws [n] arrivals with
    exponential inter-arrival gaps of mean [mean_gap_s] seconds, each
    query picked uniformly from [pool] (default: the BSBM catalog
    queries, which all overlap pairwise — the server's sharing
    opportunity). Deterministic in [seed]. *)
val generate :
  seed:int -> n:int -> mean_gap_s:float -> ?pool:Catalog.entry list ->
  unit -> t

val pp : t Fmt.t
