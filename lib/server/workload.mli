(** Workload specifications for the query server: which analytical
    queries arrive, when, and (optionally) with what deadline.

    A workload is a time-ordered stream of arrivals. It comes from a
    workload file ({!load} / {!of_string} — one arrival per line), or
    from the deterministic generator ({!generate} — Poisson-like
    arrivals over a catalog pool, seeded so every run of a benchmark
    sees the same stream).

    Workload file format, one arrival per line:

    {v
    # comment (blank lines ignored)
    0.0  MG1                       # catalog query id
    2.5  @path/to.rq               # SPARQL file, label = file name
    4.0  MG2 hot-mg2               # optional explicit label
    6.0  MG3 deadline=120          # SLO: finish within 120s of arrival
    8.0  MG4 hot-mg4 deadline=90   # label and deadline compose
    v}

    Times are seconds, non-negative and finite, in any order (arrivals
    are sorted); query references are catalog ids or [@FILE] paths;
    deadlines are positive seconds relative to the arrival time. All
    parse errors carry the offending line number, and a broken [@FILE]
    referenced from several lines is reported against each of them
    without re-reading the file. *)

module Analytical = Rapida_sparql.Analytical
module Catalog = Rapida_queries.Catalog

type arrival = {
  a_id : int;  (** dense index in time order — the server's query id *)
  a_time_s : float;  (** arrival time on the simulated clock *)
  a_label : string;  (** catalog id, file name, or explicit label *)
  a_deadline_s : float option;
      (** SLO: seconds after [a_time_s] by which the query must finish *)
  a_query : Analytical.t;
}

type t = { arrivals : arrival list  (** sorted by time, then spec order *) }

val size : t -> int

(** Time of the last arrival (0 for an empty workload). *)
val span_s : t -> float

(** True if any arrival carries a deadline. *)
val has_deadlines : t -> bool

(** [of_string src] parses workload text. [@FILE] query references are
    read relative to the current directory. Errors carry the offending
    line number. *)
val of_string : string -> (t, string) result

(** [load path] reads and parses a workload file; [@FILE] references
    resolve relative to the workload file's directory. *)
val load : string -> (t, string) result

(** [of_entries ?deadline_s specs] builds a workload from
    (time, catalog entry) pairs directly, giving every arrival the same
    optional relative deadline. *)
val of_entries : ?deadline_s:float -> (float * Catalog.entry) list -> t

(** Why {!generate} refused its parameters. *)
type gen_error =
  | Empty_pool  (** [?pool] was [Some []] — nothing to draw from *)
  | Bad_count of int  (** [n <= 0] *)
  | Bad_mean_gap of float  (** [mean_gap_s] non-positive or not finite *)
  | Bad_deadline of float  (** [deadline_s] non-positive or not finite *)

val gen_error_message : gen_error -> string

(** [generate ~seed ~n ~mean_gap_s ?deadline_s ?pool ()] draws [n]
    arrivals with exponential inter-arrival gaps of mean [mean_gap_s]
    seconds, each query picked uniformly from [pool] (default: the BSBM
    catalog queries, which all overlap pairwise — the server's sharing
    opportunity), each carrying the optional relative [deadline_s].
    Deterministic in [seed]. Degenerate parameters yield a typed
    {!gen_error} instead of a crash or an empty stream. *)
val generate :
  seed:int -> n:int -> mean_gap_s:float -> ?deadline_s:float ->
  ?pool:Catalog.entry list -> unit -> (t, gen_error) result

(** {!generate}, raising [Invalid_argument] with {!gen_error_message}
    on degenerate parameters — for callers with known-good constants. *)
val generate_exn :
  seed:int -> n:int -> mean_gap_s:float -> ?deadline_s:float ->
  ?pool:Catalog.entry list -> unit -> t

val pp : t Fmt.t
