(** The query server: a workload driver with cross-query multi-query
    optimization.

    The server admits a time-ordered stream of analytical queries
    ({!Workload.t}) in admission windows: a window opens at the first
    pending arrival and closes [window_s] later; everything that arrived
    meanwhile is admitted as one batch. Each batch is partitioned into
    overlap groups ({!Rapida_core.Batch_exec.group_queries} — the
    paper's Defs 3.1/3.2 machinery applied {e across} queries), every
    group runs as one shared composite plan (one scan, one Agg-Join
    cycle, one demux — {!Rapida_core.Batch_exec.run_group}), and the
    groups' priced workflows contend for the cluster's slots under a
    {!Rapida_mapred.Scheduler} policy. Per-query latency is
    admission wait + queueing delay + shared execution.

    Every run also prices the back-to-back baseline — each query solo
    through {!Rapida_core.Engine.execute}, sequentially on the same
    cluster — and checks every server-path result against its solo
    result ({!Rapida_relational.Relops.same_results}): sharing must
    change the price, never the answer. *)

module Engine = Rapida_core.Engine
module Scheduler = Rapida_mapred.Scheduler
module Json = Rapida_mapred.Json

type config = {
  c_kind : Engine.kind;
  c_window_s : float;  (** admission window length, seconds *)
  c_policy : Scheduler.policy;
  c_share : bool;
      (** cross-query sharing on MQO-capable kinds; [false] runs every
          admitted query solo (grouping off), isolating the scheduler *)
  c_options : Rapida_core.Plan_util.options;
}

(** [config kind] with the defaults: 5 s window, fair-share scheduling,
    sharing on, {!Rapida_core.Plan_util.default_options}. *)
val config :
  ?window_s:float ->
  ?policy:Scheduler.policy ->
  ?share:bool ->
  ?options:Rapida_core.Plan_util.options ->
  Engine.kind -> config

(** One query's fate through the server. *)
type query_report = {
  q_id : int;
  q_label : string;
  q_arrival_s : float;
  q_batch : int;  (** admission batch index *)
  q_group : int;  (** global overlap-group index *)
  q_group_size : int;  (** queries sharing its composite plan *)
  q_queue_s : float;  (** admission wait + scheduler queueing delay *)
  q_latency_s : float;  (** group completion − arrival *)
  q_rows : int;
  q_error : Engine.error option;
  q_matches_solo : bool;
      (** result identical to the query's solo {!Engine.execute} run *)
}

type batch_report = {
  b_index : int;
  b_open_s : float;  (** first arrival of the batch *)
  b_admit_s : float;  (** window close = admission instant *)
  b_size : int;
  b_group_sizes : int list;  (** overlap-group sizes, batch order *)
}

type t = {
  r_kind : Engine.kind;
  r_window_s : float;
  r_policy : Scheduler.policy;
  r_share : bool;
  r_queries : query_report list;  (** in arrival order *)
  r_batches : batch_report list;
  (* server-path totals *)
  r_jobs : int;
  r_input_bytes : int;  (** total scan bytes across all shared plans *)
  r_makespan_s : float;
  r_utilization : float;  (** busy slot-seconds over pool × makespan *)
  r_latency_mean_s : float;
  r_latency_p50_s : float;
  r_latency_p95_s : float;
  r_latency_p99_s : float;
  r_latency_max_s : float;
  (* back-to-back baseline on the same cluster *)
  r_solo_jobs : int;
  r_solo_input_bytes : int;
  r_solo_makespan_s : float;
  r_solo_latency_p50_s : float;
  r_solo_latency_p95_s : float;
  r_solo_latency_p99_s : float;
  r_jobs_saved : int;  (** [r_solo_jobs - r_jobs] *)
  r_bytes_saved : int;  (** [r_solo_input_bytes - r_input_bytes] *)
  r_all_matched : bool;  (** every query's result matched its solo run *)
  r_errors : int;
}

(** [run config input workload] drives the whole workload through the
    server and prices the solo baseline. Pure simulation — deterministic
    for a given (config, input, workload). *)
val run : config -> Engine.input -> Workload.t -> t

(** [percentile p xs] is the nearest-rank [p]-th percentile of [xs]
    (0 on empty input). Exposed for the harness sweeps. *)
val percentile : float -> float list -> float

val pp : t Fmt.t

(** Per-query lines, then the {!pp} summary. *)
val pp_detail : t Fmt.t

val to_json : t -> Json.t
