(** The query server: a workload driver with cross-query multi-query
    optimization and an (off-by-default) overload-resilience layer.

    The server admits a time-ordered stream of analytical queries
    ({!Workload.t}) in admission windows: a window opens at the first
    pending arrival and closes [window_s] later; everything that arrived
    meanwhile is admitted as one batch. Each batch is partitioned into
    overlap groups ({!Rapida_core.Batch_exec.group_queries} — the
    paper's Defs 3.1/3.2 machinery applied {e across} queries), every
    group runs as one shared composite plan (one scan, one Agg-Join
    cycle, one demux — {!Rapida_core.Batch_exec.run_group}), and the
    groups' priced workflows contend for the cluster's slots under a
    {!Rapida_mapred.Scheduler} policy. Per-query latency is
    admission wait + queueing delay + shared execution.

    Every run also prices the back-to-back baseline — each query solo
    through {!Rapida_core.Engine.execute}, sequentially on the same
    cluster — and checks every server-path result against its solo
    result ({!Rapida_relational.Relops.same_results}): sharing must
    change the price, never the answer.

    {2 Overload resilience}

    With an {!overload} configuration (or deadlines in the workload)
    the server protects itself under pressure instead of letting every
    latency blow up together:

    - {b Deadlines/SLOs}: each arrival may carry a relative deadline;
      the scheduler's estimated completion lets the server refuse
      queries that cannot meet theirs, and finished queries that ran
      past theirs are reported {!Deadline_missed}.
    - {b Admission control}: a bounded pending queue ([queue_cap]
      queries in flight + admitted); overflow is shed under a
      {!shed_policy}. A circuit breaker trips after [breaker_k]
      consecutive transient ([Job_failed]) results and sheds whole
      batches until its cooldown passes.
    - {b Degradation ladder}: under measured pressure (in-flight query
      depth or backlog drain time over their thresholds) the server
      steps down — level 0: full MQO sharing; level 1: sharing off
      (smaller latency variance); level 2: broadcast-everything
      heuristic plans with sampled result verification — and steps back
      up when pressure clears. Every step is counted and traced
      (category ["overload"] in {!field-r_trace}).

    Every shed query gets a typed {!fate} — never a silent drop — and
    the report grows goodput, per-fate counts and latency percentiles,
    and time-in-level. With everything disabled the run, report, and
    JSON are bit-identical to the unprotected server.

    {2 Cost-based planning}

    With an {!optimize_cfg} the server plans every executed group with
    the {!Rapida_planner} layer: singleton groups plan the member query,
    shared groups plan the pooled composite that actually executes.
    Decisions come from a bounded plan cache keyed by (query shape,
    catalog fingerprint) — repeated workload shapes skip join
    enumeration entirely — and each optimized singleton result is
    checked against the analyzer's predicted root interval. An escape
    counts a misestimate ([opt.misestimates] in the context metrics),
    makes the next group run the heuristic plan, and [defense_k]
    consecutive escapes turn the optimizer off for the rest of the run
    ({!Rapida_planner.Defense}). With [c_optimize = None] (the default)
    the run, report, and JSON are bit-identical to the heuristic
    server. *)

module Engine = Rapida_core.Engine
module Scheduler = Rapida_mapred.Scheduler
module Trace = Rapida_mapred.Trace
module Json = Rapida_mapred.Json

(** What to shed when the pending queue is full. [Drop_tail] sheds the
    latest arrivals; [Cost_aware] the most expensive queries first (by
    the priced solo plan's slot-seconds); [Deadline_aware] keeps the
    earliest absolute deadlines, shedding no-deadline queries first,
    and additionally refuses queries whose estimated completion already
    misses their deadline. *)
type shed_policy = Drop_tail | Cost_aware | Deadline_aware

val shed_policy_name : shed_policy -> string
val shed_policy_of_string : string -> shed_policy option

(** Why a query was shed: the pending queue was full ([Queue_full]),
    its deadline was already infeasible at admission ([Infeasible]), or
    the circuit breaker was open ([Breaker_open]). *)
type shed_reason = Queue_full | Infeasible | Breaker_open

val shed_reason_name : shed_reason -> string

(** One query's terminal fate. [Completed] means finished within its
    deadline (or it had none); [Deadline_missed] means it finished, with
    a correct answer, but late; [Failed] is an execution error. *)
type fate = Completed | Shed of shed_reason | Deadline_missed | Failed

val fate_name : fate -> string

(** The overload-resilience knobs. All off in {!overload_off}; the
    server's behaviour with that value is bit-identical to the
    unprotected server. *)
type overload = {
  ov_queue_cap : int option;
      (** bound on in-flight + newly admitted queries; [None] = unbounded *)
  ov_shed_policy : shed_policy;
  ov_deadline_s : float option;
      (** default relative deadline for arrivals without their own *)
  ov_breaker_k : int option;
      (** consecutive transient failures that open the circuit breaker *)
  ov_breaker_cooldown_s : float;  (** how long an open breaker sheds *)
  ov_degrade : bool;  (** enable the degradation ladder *)
  ov_degrade_depth : int;
      (** in-flight queries at which the ladder steps to level 1 (level
          2 at twice this) *)
  ov_degrade_drain_s : float;
      (** backlog drain seconds at which the ladder steps to level 1
          (level 2 at twice this) *)
  ov_verify_sample : int;
      (** at ladder level 2, verify 1 in this many results against solo *)
}

(** [overload ()] with the defaults: everything off ([queue_cap],
    [breaker_k], [deadline_s] unset, [degrade] false), [Drop_tail]
    shedding, 120 s breaker cooldown, level thresholds 8 queries /
    60 s drain, verification sampling 1-in-4. *)
val overload :
  ?queue_cap:int ->
  ?shed_policy:shed_policy ->
  ?deadline_s:float ->
  ?breaker_k:int ->
  ?breaker_cooldown_s:float ->
  ?degrade:bool ->
  ?degrade_depth:int ->
  ?degrade_drain_s:float ->
  ?verify_sample:int ->
  unit -> overload

val overload_off : overload

(** True when any overload knob is set — the layer also activates when
    the workload itself carries deadlines. *)
val overload_enabled : overload -> bool

(** The cost-based planner knobs: robustness policy, plan-cache
    capacity, and the circuit breaker's consecutive-escape threshold. *)
type optimize_cfg = {
  oc_policy : Rapida_planner.Cost_model.policy;
  oc_cache_capacity : int;  (** LRU plan-cache entries *)
  oc_defense_k : int;
      (** consecutive misestimate escapes that trip the breaker *)
}

(** [optimize ()] with the defaults: [Worst_case] policy, 64 cache
    entries, breaker threshold 3. *)
val optimize :
  ?policy:Rapida_planner.Cost_model.policy ->
  ?cache_capacity:int ->
  ?defense_k:int ->
  unit -> optimize_cfg

type config = {
  c_kind : Engine.kind;
  c_window_s : float;  (** admission window length, seconds *)
  c_policy : Scheduler.policy;
  c_share : bool;
      (** cross-query sharing on MQO-capable kinds; [false] runs every
          admitted query solo (grouping off), isolating the scheduler *)
  c_overload : overload;
  c_optimize : optimize_cfg option;
      (** cost-based planning; [None] (default) is the heuristic server *)
  c_options : Rapida_core.Plan_util.options;
}

(** [config kind] with the defaults: 5 s window, fair-share scheduling,
    sharing on, {!overload_off}, no cost-based planning,
    {!Rapida_core.Plan_util.default_options}. *)
val config :
  ?window_s:float ->
  ?policy:Scheduler.policy ->
  ?share:bool ->
  ?overload:overload ->
  ?optimize:optimize_cfg ->
  ?options:Rapida_core.Plan_util.options ->
  Engine.kind -> config

(** One query's path through the server. Shed queries carry
    [q_group = -1], zero latency/rows, and a vacuously-true
    [q_matches_solo]. *)
type query_report = {
  q_id : int;
  q_label : string;
  q_arrival_s : float;
  q_batch : int;  (** admission batch index *)
  q_group : int;  (** global overlap-group index; -1 if shed *)
  q_group_size : int;  (** queries sharing its composite plan *)
  q_queue_s : float;  (** admission wait + scheduler queueing delay *)
  q_latency_s : float;  (** group completion − arrival *)
  q_rows : int;
  q_deadline_s : float option;
      (** effective relative deadline (workload or config default) *)
  q_fate : fate;
  q_checked : bool;
      (** result was compared against the solo run (always true below
          ladder level 2; sampled at level 2) *)
  q_error : Engine.error option;
  q_matches_solo : bool;
      (** result identical to the query's solo {!Engine.execute} run *)
}

type batch_report = {
  b_index : int;
  b_open_s : float;  (** first arrival of the batch *)
  b_admit_s : float;  (** window close = admission instant *)
  b_size : int;  (** arrivals in the window (including later-shed) *)
  b_group_sizes : int list;  (** executed overlap-group sizes, batch order *)
}

(** Goodput-first accounting, present when the overload layer was
    active. Goodput is the fraction of all arrivals that [Completed]
    (finished, correct, within deadline). *)
type overload_report = {
  o_completed : int;
  o_shed_queue : int;
  o_shed_infeasible : int;
  o_shed_breaker : int;
  o_missed : int;
  o_failed : int;
  o_goodput : float;
  o_breaker_trips : int;
  o_level_steps : int;  (** degradation-ladder transitions *)
  o_time_in_level : (int * float) list;
      (** (level, seconds) — empty unless the ladder was enabled *)
  o_completed_p50_s : float;
  o_completed_p95_s : float;
  o_completed_p99_s : float;
  o_missed_p50_s : float;
  o_missed_p95_s : float;
  o_missed_p99_s : float;
  o_checked : int;  (** results verified against their solo run *)
}

(** Cost-based planner accounting, present when {!field-c_optimize} was
    set. A cache hit means a group executed a previously enumerated
    plan with no enumeration at all. *)
type optimize_report = {
  p_policy : string;
  p_planned : int;  (** groups planned with the optimizer armed *)
  p_cache : Rapida_planner.Plan_cache.stats;
  p_misestimates : int;
      (** optimized results outside their predicted interval *)
  p_fallbacks : int;  (** heuristic groups paid for escapes *)
  p_breaker : string;  (** final breaker state: armed/cooling/off *)
}

type t = {
  r_kind : Engine.kind;
  r_window_s : float;
  r_policy : Scheduler.policy;
  r_share : bool;
  r_queries : query_report list;  (** in arrival order *)
  r_batches : batch_report list;
  (* server-path totals *)
  r_jobs : int;
  r_input_bytes : int;  (** total scan bytes across all shared plans *)
  r_makespan_s : float;
  r_utilization : float;  (** busy slot-seconds over pool × makespan *)
  r_latency_mean_s : float;  (** executed (non-shed) queries only *)
  r_latency_p50_s : float;
  r_latency_p95_s : float;
  r_latency_p99_s : float;
  r_latency_max_s : float;
  (* back-to-back baseline on the same cluster *)
  r_solo_jobs : int;
  r_solo_input_bytes : int;
  r_solo_makespan_s : float;
  r_solo_latency_p50_s : float;
  r_solo_latency_p95_s : float;
  r_solo_latency_p99_s : float;
  r_jobs_saved : int;  (** [r_solo_jobs - r_jobs] *)
  r_bytes_saved : int;  (** [r_solo_input_bytes - r_input_bytes] *)
  r_all_matched : bool;  (** every checked query matched its solo run *)
  r_errors : int;
  r_overload : overload_report option;  (** [Some] iff the layer was active *)
  r_optimize : optimize_report option;
      (** [Some] iff cost-based planning was configured *)
  r_trace : Trace.t;
      (** server-level spans, category ["overload"]: level periods, shed
          decisions, breaker openings *)
}

(** [run config input workload] drives the whole workload through the
    server and prices the solo baseline. Pure simulation — deterministic
    for a given (config, input, workload). *)
val run : config -> Engine.input -> Workload.t -> t

(** [percentile p xs] is the nearest-rank [p]-th percentile of [xs]
    (0 on empty input). Exposed for the harness sweeps. *)
val percentile : float -> float list -> float

val pp : t Fmt.t

(** Per-query lines, then the {!pp} summary. *)
val pp_detail : t Fmt.t

val to_json : t -> Json.t
