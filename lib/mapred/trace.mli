(** Structured trace of the simulated execution, exportable as a Chrome
    trace-event file (load in [chrome://tracing] or Perfetto).

    A trace sink owns a simulated clock. Each simulated job emits one
    span per phase (startup, map read, combine, shuffle, sort, reduce
    write) positioned on that clock, then advances it by the job's
    simulated duration — so the exported timeline reads exactly like the
    sequential Hadoop DAG the cost model describes. Spans are recorded in
    emission order and the whole pipeline is deterministic.

    Span categories in use: ["job"] and ["phase"] for the cost model's
    cycles, ["attempt"] for injected-fault re-work, ["abort"] for failed
    submissions and retry backoff, ["checkpoint"] for materialized job
    outputs, ["replay"] for checkpoint-recovery re-runs, and
    ["overload"] for the query server's degradation-level periods,
    shed decisions, and circuit-breaker openings. *)

type event = {
  name : string;
  cat : string;  (** Chrome trace category, e.g. ["job"] or ["phase"] *)
  ph : string;  (** event type: ["X"] complete span, ["M"] metadata *)
  ts_us : float;  (** start, simulated microseconds *)
  dur_us : float;  (** duration, simulated microseconds *)
  tid : int;
  args : (string * Json.t) list;
}

type t

val create : unit -> t

(** Current simulated time, seconds since the trace began. *)
val now_s : t -> float

(** [advance t dt_s] moves the simulated clock forward. *)
val advance : t -> float -> unit

(** [span t ~name ~cat ~start_s ~dur_s args] records a complete span at
    absolute simulated time [start_s]. *)
val span :
  t -> name:string -> cat:string -> start_s:float -> dur_s:float ->
  (string * Json.t) list -> unit

(** Events in emission order. *)
val events : t -> event list

(** Spans (ph = "X") whose category is [cat], in emission order. *)
val spans_with_cat : t -> string -> event list

(** The full Chrome trace-event document:
    [{"traceEvents": [...], "displayTimeUnit": "ms"}]. *)
val to_json : t -> Json.t

val to_string : t -> string
val write_file : t -> string -> unit
