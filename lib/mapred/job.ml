type ('a, 'k, 'v, 'b) spec = {
  name : string;
  map : 'a -> ('k * 'v) list;
  combine : ('k -> 'v list -> 'v list) option;
  reduce : 'k -> 'v list -> 'b list;
  input_size : 'a -> int;
  key_size : 'k -> int;
  value_size : 'v -> int;
  output_size : 'b -> int;
}

type ('a, 'b) map_only_spec = {
  mo_name : string;
  mo_map : 'a -> 'b list;
  mo_input_size : 'a -> int;
  mo_output_size : 'b -> int;
}

type failure = {
  f_job : string;
  f_phase : Fault_injector.phase;
  f_task : int;
  f_attempts : int;
  f_reason : string;
  f_elapsed_s : float;
  f_deterministic : bool;
}

exception Job_failed of failure

let pp_failure ppf f =
  Fmt.pf ppf "job %S: %s task %d failed %d attempt%s: %s" f.f_job
    (Fault_injector.phase_name f.f_phase)
    f.f_task f.f_attempts
    (if f.f_attempts = 1 then "" else "s")
    f.f_reason

(* Group (k, v) pairs by key, preserving the order in which keys first
   appear so that the simulator is deterministic end to end. Values within
   a group keep arrival order. *)
let group_pairs pairs =
  let tbl = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun (k, v) ->
      match Hashtbl.find_opt tbl k with
      | Some cell -> cell := v :: !cell
      | None ->
        Hashtbl.add tbl k (ref [ v ]);
        order := k :: !order)
    pairs;
  List.rev_map (fun k -> (k, List.rev !(Hashtbl.find tbl k))) !order
  |> List.rev

let estimate_map_tasks cluster ~input_bytes =
  let splits =
    (input_bytes + cluster.Cluster.block_size_bytes - 1)
    / cluster.Cluster.block_size_bytes
  in
  max 1 splits

(* Partition the input into [n] map tasks of roughly equal record count.
   Hadoop splits by bytes; equal record counts are a fair stand-in since
   our records within one job are homogeneous. *)
let partition_input input n =
  let n = max 1 n in
  let arr = Array.of_list input in
  let len = Array.length arr in
  let per = max 1 ((len + n - 1) / n) in
  let rec go start acc =
    if start >= len then List.rev acc
    else
      let stop = min len (start + per) in
      go stop (Array.to_list (Array.sub arr start (stop - start)) :: acc)
  in
  if len = 0 then [ [] ] else go 0 []

let mb bytes = float_of_int bytes /. (1024.0 *. 1024.0)

let parallel_throughput ~per_node_mb_s ~tasks ~slots =
  let effective = min tasks slots in
  per_node_mb_s *. float_of_int (max 1 effective)

let fate_label = function
  | Fault_injector.Crashed _ -> "crashed"
  | Fault_injector.Speculated -> "speculated"
  | Fault_injector.Straggled -> "straggled"
  | Fault_injector.Oom_killed -> "oom"
  | Fault_injector.Poisoned -> "poison"

(* One span per non-healthy attempt, laid at the phase's start offset. *)
let event_spans job phase ~phase_offset_s events =
  List.map
    (fun (ev : Fault_injector.attempt_event) ->
      ( Printf.sprintf "%s/%s.t%d.a%d:%s" job
          (Fault_injector.phase_name phase)
          ev.Fault_injector.ev_task ev.Fault_injector.ev_attempt
          (fate_label ev.Fault_injector.ev_fate),
        phase_offset_s,
        ev.Fault_injector.ev_wasted_s,
        [
          ("task", Json.Int ev.Fault_injector.ev_task);
          ("attempt", Json.Int ev.Fault_injector.ev_attempt);
          ("fate", Json.String (fate_label ev.Fault_injector.ev_fate));
        ] ))
    events

let attempt_spans job phase ~phase_offset_s (sim : Fault_injector.phase_sim) =
  event_spans job phase ~phase_offset_s sim.Fault_injector.events

(* A user map/combine/reduce function threw: the input is deterministic,
   so every one of the task's attempts fails the same way and the job is
   lost (Hadoop semantics for a buggy job). *)
let user_failure metrics inj ~job ~phase ~task ~elapsed_s exn =
  let max_attempts = (Fault_injector.config inj).Fault_injector.max_attempts in
  Metrics.add metrics "mr.attempts_failed" max_attempts;
  Metrics.add metrics "mr.jobs_failed" 1;
  raise
    (Job_failed
       {
         f_job = job;
         f_phase = phase;
         f_task = task;
         f_attempts = max_attempts;
         f_reason = Printexc.to_string exn;
         f_elapsed_s = elapsed_s;
         f_deterministic = true;
       })

(* Hadoop bad-record skip mode (SkipBadRecords). A poison record crashes
   its map task at the same point on every attempt, so after
   [max_attempts] identical crashes the task reruns in skip mode,
   bisecting its input range to isolate the record — each probe reruns
   half the previous probe's work — then skips it and completes. All of
   it is priced in slot-seconds on the map slots. The real computation
   is untouched: an injected poison record is a simulated fate, exactly
   like an injected crash, so skipping it never changes the answer. *)
let simulate_skip inj ~job ~task_inputs ~per_task_slot_s =
  let max_attempts = (Fault_injector.config inj).Fault_injector.max_attempts in
  let events = ref [] in
  let skipped = ref 0 in
  let first_poisoned_task = ref None in
  let base = ref 0 in
  List.iteri
    (fun task task_input ->
      let len = List.length task_input in
      List.iteri
        (fun i _ ->
          if Fault_injector.poisoned inj ~job ~record:(!base + i) then begin
            if !first_poisoned_task = None then first_poisoned_task := Some task;
            incr skipped;
            (* The record's position in the task decides how much work
               each crashed attempt completes before dying. *)
            let frac = float_of_int (i + 1) /. float_of_int (max 1 len) in
            for a = 1 to max_attempts do
              events :=
                {
                  Fault_injector.ev_task = task;
                  ev_attempt = a;
                  ev_fate = Fault_injector.Poisoned;
                  ev_wasted_s = frac *. per_task_slot_s;
                }
                :: !events
            done;
            let probe_s = ref (per_task_slot_s /. 2.0) in
            let candidates = ref len in
            let a = ref max_attempts in
            while !candidates > 1 do
              incr a;
              events :=
                {
                  Fault_injector.ev_task = task;
                  ev_attempt = !a;
                  ev_fate = Fault_injector.Poisoned;
                  ev_wasted_s = !probe_s;
                }
                :: !events;
              probe_s := !probe_s /. 2.0;
              candidates := (!candidates + 1) / 2
            done
          end)
        task_input;
      base := !base + len)
    task_inputs;
  (List.rev !events, !skipped, !first_poisoned_task)

(* Poison records beyond the skip tolerance: deterministic, like a user
   exception — the same records poison every resubmission. *)
let poison_failure metrics inj ~job ~skipped ~task ~elapsed_s =
  let cfg = Fault_injector.config inj in
  Metrics.add metrics "mr.attempts_failed" cfg.Fault_injector.max_attempts;
  Metrics.add metrics "mr.jobs_failed" 1;
  raise
    (Job_failed
       {
         f_job = job;
         f_phase = Fault_injector.Map;
         f_task = task;
         f_attempts = cfg.Fault_injector.max_attempts;
         f_reason =
           Printf.sprintf
             "%d poison record%s exceed%s the skip tolerance (skip-max=%d)"
             skipped
             (if skipped = 1 then "" else "s")
             (if skipped = 1 then "s" else "")
             cfg.Fault_injector.skip_max_records;
         f_elapsed_s = elapsed_s;
         f_deterministic = true;
       })

(* An injected crash sequence exhausted a task's attempts. *)
let injected_failure metrics ~job ~phase ~task ~attempts ~elapsed_s
    (sim : Fault_injector.phase_sim) =
  Metrics.add metrics "mr.attempts_failed" sim.Fault_injector.attempts_failed;
  if sim.Fault_injector.speculative_launched > 0 then
    Metrics.add metrics "mr.speculative_launched"
      sim.Fault_injector.speculative_launched;
  if sim.Fault_injector.attempts_killed > 0 then
    Metrics.add metrics "mr.attempts_killed" sim.Fault_injector.attempts_killed;
  Metrics.add metrics "mr.jobs_failed" 1;
  raise
    (Job_failed
       {
         f_job = job;
         f_phase = phase;
         f_task = task;
         f_attempts = attempts;
         f_reason = "injected task-attempt crashes exhausted retries";
         f_elapsed_s = elapsed_s;
         f_deterministic = false;
       })

(* Record the job's telemetry into the context: per-phase spans on the
   simulated clock, then per-attempt fault spans, then the clock advance
   and the counter bumps. *)
let record ctx (stats : Stats.job) ~phase_spans ~attempt_spans =
  let trace = Exec_ctx.trace ctx in
  let t0 = Trace.now_s trace in
  Trace.span trace ~name:stats.Stats.name ~cat:"job" ~start_s:t0
    ~dur_s:stats.Stats.est_time_s
    [
      ("map_tasks", Json.Int stats.Stats.map_tasks);
      ("reduce_tasks", Json.Int stats.Stats.reduce_tasks);
      ("input_bytes", Json.Int stats.Stats.input_bytes);
      ("shuffle_bytes", Json.Int stats.Stats.shuffle_bytes);
      ("output_bytes", Json.Int stats.Stats.output_bytes);
    ];
  let _ =
    List.fold_left
      (fun at (phase, dur_s, args) ->
        Trace.span trace
          ~name:(stats.Stats.name ^ "/" ^ phase)
          ~cat:"phase" ~start_s:at ~dur_s
          (("phase", Json.String phase) :: args);
        at +. dur_s)
      t0 phase_spans
  in
  List.iter
    (fun (name, offset_s, dur_s, args) ->
      Trace.span trace ~name ~cat:"attempt" ~start_s:(t0 +. offset_s) ~dur_s
        args)
    attempt_spans;
  Trace.advance trace stats.Stats.est_time_s;
  let m = Exec_ctx.metrics ctx in
  Metrics.add m "mr.jobs" 1;
  (match stats.Stats.kind with
  | Stats.Map_only -> Metrics.add m "mr.map_only_jobs" 1
  | Stats.Map_reduce -> ());
  Metrics.add m "mr.map_tasks" stats.Stats.map_tasks;
  Metrics.add m "mr.reduce_tasks" stats.Stats.reduce_tasks;
  Metrics.add m "mr.input_records" stats.Stats.input_records;
  Metrics.add m "mr.input_bytes" stats.Stats.input_bytes;
  Metrics.add m "mr.shuffle_records" stats.Stats.shuffle_records;
  Metrics.add m "mr.shuffle_bytes" stats.Stats.shuffle_bytes;
  Metrics.add m "mr.output_records" stats.Stats.output_records;
  Metrics.add m "mr.output_bytes" stats.Stats.output_bytes;
  Metrics.add m "mr.combine.input_records" stats.Stats.combine_input_records;
  Metrics.add m "mr.combine.output_records" stats.Stats.combine_output_records;
  Metrics.add m "mr.reduce.groups" stats.Stats.reduce_groups;
  if stats.Stats.attempts_failed > 0 then
    Metrics.add m "mr.attempts_failed" stats.Stats.attempts_failed;
  if stats.Stats.speculative_launched > 0 then
    Metrics.add m "mr.speculative_launched" stats.Stats.speculative_launched;
  if stats.Stats.attempts_killed > 0 then
    Metrics.add m "mr.attempts_killed" stats.Stats.attempts_killed;
  if stats.Stats.spilled_bytes > 0 then
    Metrics.add m "mr.spilled_bytes" stats.Stats.spilled_bytes;
  if stats.Stats.spill_passes > 0 then
    Metrics.add m "mr.spill_passes" stats.Stats.spill_passes;
  if stats.Stats.oom_kills > 0 then
    Metrics.add m "mr.oom_kills" stats.Stats.oom_kills;
  if stats.Stats.skipped_records > 0 then
    Metrics.add m "mr.skipped_records" stats.Stats.skipped_records

let run ?(attempt = 0) ctx spec input =
  let cluster = Exec_ctx.cluster ctx in
  let inj = Exec_ctx.faults ctx in
  let metrics = Exec_ctx.metrics ctx in
  let input_records = List.length input in
  let input_bytes =
    List.fold_left (fun acc r -> acc + spec.input_size r) 0 input
  in
  let stored_bytes =
    int_of_float (float_of_int input_bytes *. cluster.Cluster.compression_ratio)
  in
  let map_tasks = estimate_map_tasks cluster ~input_bytes:stored_bytes in
  let task_inputs = partition_input input map_tasks in
  (* Map tasks are launched per stored (possibly compressed) split, but
     each task processes the uncompressed records: compression reduces
     parallelism, not work — the paper's observed ORC effect. *)
  let map_read_s =
    mb input_bytes
    /. parallel_throughput ~per_node_mb_s:cluster.Cluster.disk_mb_per_s
         ~tasks:map_tasks ~slots:(Cluster.map_slots cluster)
  in
  (* Map phase, with an optional per-task combiner under the cluster's
     memory budget. Each task's pre-combine working set (the combiner
     hash table) is estimated from the pair size estimators; a task whose
     estimate exceeds the container heap is OOM-killed
     [Memory.oom_attempts] times and then rerun with its combiner
     disabled — degraded (bigger shuffle) but completing, and because the
     combiner is merge-sound the results are unchanged. A task's map
     output that overflows the sort buffer prices external-sort spill
     passes. A user function that throws becomes a structured task
     failure, never an escaping exception. *)
  let memcfg = Cluster.memory cluster in
  let spill_budget = Memory.spill_budget memcfg in
  let max_attempts = (Fault_injector.config inj).Fault_injector.max_attempts in
  let eff_map_slots = max 1 (min map_tasks (Cluster.map_slots cluster)) in
  (* Work conservation, as in [Fault_injector.simulate_phase]: one map
     task's serial work in slot-seconds. An OOM-killed attempt wastes a
     whole attempt's work — the JVM dies at the end of the fill, not
     proportionally to the heap it was granted (a smaller heap must
     never make the waste cheaper). *)
  let per_task_map_slot_s =
    map_read_s *. float_of_int eff_map_slots /. float_of_int map_tasks
  in
  let pair_bytes (k, v) = spec.key_size k + spec.value_size v + 12 in
  let pairs_bytes = List.fold_left (fun acc p -> acc + pair_bytes p) 0 in
  let combine_input = ref 0 in
  let oom_events = ref [] in
  let map_spilled_bytes = ref 0 in
  let map_spill_passes = ref 0 in
  let shuffle_pairs =
    List.concat
      (List.mapi
         (fun task task_input ->
           try
             let emitted = List.concat_map spec.map task_input in
             combine_input := !combine_input + List.length emitted;
             let emitted_bytes = pairs_bytes emitted in
             let combine =
               match spec.combine with
               | Some _ when emitted_bytes > memcfg.Memory.task_heap_bytes ->
                 for a = 1 to Memory.oom_attempts ~max_attempts do
                   oom_events :=
                     {
                       Fault_injector.ev_task = task;
                       ev_attempt = a;
                       ev_fate = Fault_injector.Oom_killed;
                       ev_wasted_s = per_task_map_slot_s;
                     }
                     :: !oom_events
                 done;
                 None
               | c -> c
             in
             let out, out_bytes =
               match combine with
               | None -> (emitted, emitted_bytes)
               | Some combine ->
                 let out =
                   group_pairs emitted
                   |> List.concat_map (fun (k, vs) ->
                          List.map (fun v -> (k, v)) (combine k vs))
                 in
                 (out, pairs_bytes out)
             in
             let passes =
               Memory.spill_passes ~budget_bytes:spill_budget
                 ~data_bytes:out_bytes
             in
             if passes > 0 then begin
               map_spilled_bytes := !map_spilled_bytes + (passes * out_bytes);
               map_spill_passes := !map_spill_passes + passes
             end;
             out
           with
           | Job_failed _ as e -> raise e
           | exn ->
             user_failure metrics inj ~job:spec.name ~phase:Fault_injector.Map
               ~task
               ~elapsed_s:(cluster.Cluster.job_startup_s +. map_read_s)
               exn)
         task_inputs)
  in
  let oom_events = List.rev !oom_events in
  let oom_kills = List.length oom_events in
  let oom_s =
    List.fold_left
      (fun acc (ev : Fault_injector.attempt_event) ->
        acc +. ev.Fault_injector.ev_wasted_s)
      0.0 oom_events
    /. float_of_int eff_map_slots
  in
  let map_spill_s =
    2.0
    *. mb !map_spilled_bytes
    /. parallel_throughput ~per_node_mb_s:cluster.Cluster.disk_mb_per_s
         ~tasks:map_tasks ~slots:(Cluster.map_slots cluster)
  in
  (* Injected map faults: retried and speculative attempts re-do real
     read work on the same slots. *)
  let map_sim =
    Fault_injector.simulate_phase inj ~job:spec.name ~job_attempt:attempt
      ~phase:Fault_injector.Map ~tasks:map_tasks
      ~slots:(Cluster.map_slots cluster) ~base_s:map_read_s
  in
  (match map_sim.Fault_injector.exhausted with
  | Some (task, attempts) ->
    injected_failure metrics ~job:spec.name ~phase:Fault_injector.Map ~task
      ~attempts
      ~elapsed_s:
        (cluster.Cluster.job_startup_s +. map_sim.Fault_injector.elapsed_s)
      map_sim
  | None -> ());
  (* Bad-record skip mode: poisoned records burn their attempts, get
     bisected to, and are skipped — within the configured tolerance. *)
  let skip_events, skipped_records, first_poisoned_task =
    if Fault_injector.poison_active inj then
      simulate_skip inj ~job:spec.name ~task_inputs
        ~per_task_slot_s:per_task_map_slot_s
    else ([], 0, None)
  in
  let skip_s =
    List.fold_left
      (fun acc (ev : Fault_injector.attempt_event) ->
        acc +. ev.Fault_injector.ev_wasted_s)
      0.0 skip_events
    /. float_of_int eff_map_slots
  in
  (match first_poisoned_task with
  | Some task
    when skipped_records
         > (Fault_injector.config inj).Fault_injector.skip_max_records ->
    poison_failure metrics inj ~job:spec.name ~skipped:skipped_records ~task
      ~elapsed_s:
        (cluster.Cluster.job_startup_s +. map_sim.Fault_injector.elapsed_s
        +. skip_s)
  | _ -> ());
  let shuffle_records = List.length shuffle_pairs in
  let shuffle_bytes =
    List.fold_left
      (fun acc (k, v) -> acc + spec.key_size k + spec.value_size v + 12)
      0 shuffle_pairs
  in
  (* Shuffle + reduce. *)
  let groups = group_pairs shuffle_pairs in
  let reduce_tasks =
    min (max 1 (List.length groups)) (Cluster.reduce_slots cluster)
  in
  let shuffle_net_s =
    mb shuffle_bytes
    /. parallel_throughput ~per_node_mb_s:cluster.Cluster.network_mb_per_s
         ~tasks:reduce_tasks ~slots:(Cluster.reduce_slots cluster)
  in
  let shuffle_sort_s =
    mb shuffle_bytes
    /. parallel_throughput ~per_node_mb_s:cluster.Cluster.sort_mb_per_s
         ~tasks:reduce_tasks ~slots:(Cluster.reduce_slots cluster)
  in
  let output =
    List.concat
      (List.mapi
         (fun group (k, vs) ->
           try spec.reduce k vs
           with
           | Job_failed _ as e -> raise e
           | exn ->
             user_failure metrics inj ~job:spec.name
               ~phase:Fault_injector.Reduce ~task:(group mod reduce_tasks)
               ~elapsed_s:
                 (cluster.Cluster.job_startup_s
                 +. map_sim.Fault_injector.elapsed_s +. shuffle_net_s
                 +. shuffle_sort_s)
               exn)
         groups)
  in
  let output_records = List.length output in
  let output_bytes =
    List.fold_left (fun acc r -> acc + spec.output_size r) 0 output
  in
  let reduce_write_s =
    mb output_bytes
    /. parallel_throughput ~per_node_mb_s:cluster.Cluster.disk_mb_per_s
         ~tasks:reduce_tasks ~slots:(Cluster.reduce_slots cluster)
  in
  (* Injected reduce faults: a crashed reduce attempt redoes its fetch,
     sort, and write, so the whole reduce-side phase is simulated as one
     unit and its re-work is spread over the sub-phases. *)
  let reduce_base_s = shuffle_net_s +. shuffle_sort_s +. reduce_write_s in
  let red_sim =
    Fault_injector.simulate_phase inj ~job:spec.name ~job_attempt:attempt
      ~phase:Fault_injector.Reduce ~tasks:reduce_tasks
      ~slots:(Cluster.reduce_slots cluster) ~base_s:reduce_base_s
  in
  (match red_sim.Fault_injector.exhausted with
  | Some (task, attempts) ->
    injected_failure metrics ~job:spec.name ~phase:Fault_injector.Reduce ~task
      ~attempts
      ~elapsed_s:
        (cluster.Cluster.job_startup_s +. map_sim.Fault_injector.elapsed_s
        +. red_sim.Fault_injector.elapsed_s)
      red_sim
  | None -> ());
  let rfactor =
    if reduce_base_s > 0.0 then
      red_sim.Fault_injector.elapsed_s /. reduce_base_s
    else 1.0
  in
  (* Reduce-side merge under the same sort-buffer budget: each reduce
     task merges its share of the shuffle; a share that overflows the
     buffer pays external-sort passes on local disk. *)
  let reduce_share_bytes = shuffle_bytes / max 1 reduce_tasks in
  let reduce_task_passes =
    Memory.spill_passes ~budget_bytes:spill_budget
      ~data_bytes:reduce_share_bytes
  in
  let reduce_spilled_bytes = reduce_task_passes * shuffle_bytes in
  let reduce_spill_passes = reduce_task_passes * reduce_tasks in
  let merge_spill_s =
    2.0
    *. mb reduce_spilled_bytes
    /. parallel_throughput ~per_node_mb_s:cluster.Cluster.disk_mb_per_s
         ~tasks:reduce_tasks ~slots:(Cluster.reduce_slots cluster)
  in
  (* Skip-mode re-work lands in the map phase (a zero [skip_s] keeps the
     float bit-identical, like the spill terms). *)
  let map_fault_s = map_sim.Fault_injector.elapsed_s +. skip_s in
  let shuffle_net_fault_s = shuffle_net_s *. rfactor in
  let shuffle_sort_fault_s = shuffle_sort_s *. rfactor in
  let reduce_write_fault_s = reduce_write_s *. rfactor in
  let shuffle_fault_s = shuffle_net_fault_s +. shuffle_sort_fault_s in
  let map_pressure_s = oom_s +. map_spill_s in
  let spill_s = map_pressure_s +. merge_spill_s in
  (* Grouped as [startup + (map + shuffle + reduce)] so that a zero
     spill term leaves the float result bit-identical to a simulator
     with no memory model. *)
  let est_time_s =
    cluster.Cluster.job_startup_s
    +. (map_fault_s +. shuffle_fault_s +. reduce_write_fault_s)
    +. spill_s
  in
  let combine_input_records = !combine_input in
  let combine_output_records = shuffle_records in
  let reduce_groups = List.length groups in
  let breakdown : Stats.breakdown =
    {
      startup_s = cluster.Cluster.job_startup_s;
      map_s = map_fault_s;
      shuffle_s = shuffle_net_fault_s;
      sort_s = shuffle_sort_fault_s;
      reduce_s = reduce_write_fault_s;
      spill_s;
    }
  in
  let stats : Stats.job =
    {
      name = spec.name;
      kind = Stats.Map_reduce;
      input_records;
      input_bytes;
      shuffle_records;
      shuffle_bytes;
      output_records;
      output_bytes;
      map_tasks;
      reduce_tasks;
      est_time_s;
      breakdown;
      combine_input_records;
      combine_output_records;
      reduce_groups;
      attempts_failed =
        map_sim.Fault_injector.attempts_failed
        + red_sim.Fault_injector.attempts_failed;
      speculative_launched =
        map_sim.Fault_injector.speculative_launched
        + red_sim.Fault_injector.speculative_launched;
      attempts_killed =
        map_sim.Fault_injector.attempts_killed
        + red_sim.Fault_injector.attempts_killed;
      spilled_bytes = !map_spilled_bytes + reduce_spilled_bytes;
      spill_passes = !map_spill_passes + reduce_spill_passes;
      oom_kills;
      skipped_records;
    }
  in
  let combine_span =
    match spec.combine with
    | None -> []
    | Some _ ->
      [
        ( "combine",
          0.0,
          [
            ("input_records", Json.Int combine_input_records);
            ("output_records", Json.Int combine_output_records);
          ] );
      ]
  in
  (* Spill spans appear only under memory pressure, so the default
     (generous) budget leaves the phase list — and its tiling of the job
     span — exactly as before. *)
  let spill_span =
    if map_pressure_s > 0.0 then
      [
        ( "spill",
          map_pressure_s,
          [
            ("spilled_bytes", Json.Int !map_spilled_bytes);
            ("spill_passes", Json.Int !map_spill_passes);
            ("oom_kills", Json.Int oom_kills);
          ] );
      ]
    else []
  in
  let merge_spill_span =
    if merge_spill_s > 0.0 then
      [
        ( "merge-spill",
          merge_spill_s,
          [
            ("spilled_bytes", Json.Int reduce_spilled_bytes);
            ("spill_passes", Json.Int reduce_spill_passes);
          ] );
      ]
    else []
  in
  record ctx stats
    ~phase_spans:
      ([
         ("startup", breakdown.startup_s, []);
         ( "map-read",
           breakdown.map_s,
           [ ("input_records", Json.Int input_records) ] );
       ]
      @ combine_span @ spill_span
      @ [
          ( "shuffle",
            breakdown.shuffle_s,
            [ ("shuffle_records", Json.Int shuffle_records) ] );
          ("sort", breakdown.sort_s, []);
          ( "reduce-write",
            breakdown.reduce_s,
            [
              ("groups", Json.Int reduce_groups);
              ("output_records", Json.Int output_records);
            ] );
        ]
      @ merge_spill_span)
    ~attempt_spans:
      (event_spans spec.name Fault_injector.Map
         ~phase_offset_s:breakdown.startup_s oom_events
      @ attempt_spans spec.name Fault_injector.Map
          ~phase_offset_s:breakdown.startup_s map_sim
      @ event_spans spec.name Fault_injector.Map
          ~phase_offset_s:breakdown.startup_s skip_events
      @ attempt_spans spec.name Fault_injector.Reduce
          ~phase_offset_s:
            (breakdown.startup_s +. breakdown.map_s +. map_pressure_s)
          red_sim);
  (output, stats)

let run_map_only ?(attempt = 0) ctx spec input =
  let cluster = Exec_ctx.cluster ctx in
  let inj = Exec_ctx.faults ctx in
  let metrics = Exec_ctx.metrics ctx in
  let input_records = List.length input in
  let input_bytes =
    List.fold_left (fun acc r -> acc + spec.mo_input_size r) 0 input
  in
  let stored_bytes =
    int_of_float (float_of_int input_bytes *. cluster.Cluster.compression_ratio)
  in
  let map_tasks = estimate_map_tasks cluster ~input_bytes:stored_bytes in
  let task_inputs = partition_input input map_tasks in
  let throughput =
    parallel_throughput ~per_node_mb_s:cluster.Cluster.disk_mb_per_s
      ~tasks:map_tasks ~slots:(Cluster.map_slots cluster)
  in
  let output =
    List.concat
      (List.mapi
         (fun task task_input ->
           try List.concat_map spec.mo_map task_input
           with
           | Job_failed _ as e -> raise e
           | exn ->
             user_failure metrics inj ~job:spec.mo_name
               ~phase:Fault_injector.Map ~task
               ~elapsed_s:
                 (cluster.Cluster.map_only_startup_s
                 +. (mb input_bytes /. throughput))
               exn)
         task_inputs)
  in
  let output_records = List.length output in
  let output_bytes =
    List.fold_left (fun acc r -> acc + spec.mo_output_size r) 0 output
  in
  let io_s = (mb input_bytes +. mb output_bytes) /. throughput in
  let sim =
    Fault_injector.simulate_phase inj ~job:spec.mo_name ~job_attempt:attempt
      ~phase:Fault_injector.Map ~tasks:map_tasks
      ~slots:(Cluster.map_slots cluster) ~base_s:io_s
  in
  (match sim.Fault_injector.exhausted with
  | Some (task, attempts) ->
    injected_failure metrics ~job:spec.mo_name ~phase:Fault_injector.Map ~task
      ~attempts
      ~elapsed_s:
        (cluster.Cluster.map_only_startup_s +. sim.Fault_injector.elapsed_s)
      sim
  | None -> ());
  (* Bad-record skip mode on the map-only job's tasks, priced against
     their share of the phase's I/O. *)
  let eff_slots = max 1 (min map_tasks (Cluster.map_slots cluster)) in
  let skip_events, skipped_records, first_poisoned_task =
    if Fault_injector.poison_active inj then
      simulate_skip inj ~job:spec.mo_name ~task_inputs
        ~per_task_slot_s:
          (io_s *. float_of_int eff_slots /. float_of_int map_tasks)
    else ([], 0, None)
  in
  let skip_s =
    List.fold_left
      (fun acc (ev : Fault_injector.attempt_event) ->
        acc +. ev.Fault_injector.ev_wasted_s)
      0.0 skip_events
    /. float_of_int eff_slots
  in
  (match first_poisoned_task with
  | Some task
    when skipped_records
         > (Fault_injector.config inj).Fault_injector.skip_max_records ->
    poison_failure metrics inj ~job:spec.mo_name ~skipped:skipped_records ~task
      ~elapsed_s:
        (cluster.Cluster.map_only_startup_s +. sim.Fault_injector.elapsed_s
        +. skip_s)
  | _ -> ());
  let mfactor =
    if io_s > 0.0 then sim.Fault_injector.elapsed_s /. io_s else 1.0
  in
  let map_s = sim.Fault_injector.elapsed_s +. skip_s in
  let est_time_s = cluster.Cluster.map_only_startup_s +. map_s in
  let breakdown : Stats.breakdown =
    {
      startup_s = cluster.Cluster.map_only_startup_s;
      map_s;
      shuffle_s = 0.0;
      sort_s = 0.0;
      reduce_s = 0.0;
      spill_s = 0.0;
    }
  in
  let stats : Stats.job =
    {
      name = spec.mo_name;
      kind = Stats.Map_only;
      input_records;
      input_bytes;
      shuffle_records = 0;
      shuffle_bytes = 0;
      output_records;
      output_bytes;
      map_tasks;
      reduce_tasks = 0;
      est_time_s;
      breakdown;
      combine_input_records = 0;
      combine_output_records = 0;
      reduce_groups = 0;
      attempts_failed = sim.Fault_injector.attempts_failed;
      speculative_launched = sim.Fault_injector.speculative_launched;
      attempts_killed = sim.Fault_injector.attempts_killed;
      spilled_bytes = 0;
      spill_passes = 0;
      oom_kills = 0;
      skipped_records;
    }
  in
  (* The skip span keeps the phase list tiling the job span; it appears
     only when skip mode actually fired. *)
  let skip_span =
    if skip_s > 0.0 then
      [ ("skip", skip_s, [ ("skipped_records", Json.Int skipped_records) ]) ]
    else []
  in
  record ctx stats
    ~phase_spans:
      ([
         ("startup", breakdown.startup_s, []);
         ( "map-read",
           mb input_bytes /. throughput *. mfactor,
           [ ("input_records", Json.Int input_records) ] );
         ( "map-write",
           mb output_bytes /. throughput *. mfactor,
           [ ("output_records", Json.Int output_records) ] );
       ]
      @ skip_span)
    ~attempt_spans:
      (attempt_spans spec.mo_name Fault_injector.Map
         ~phase_offset_s:breakdown.startup_s sim
      @ event_spans spec.mo_name Fault_injector.Map
          ~phase_offset_s:breakdown.startup_s skip_events);
  (output, stats)
