type ('a, 'k, 'v, 'b) spec = {
  name : string;
  map : 'a -> ('k * 'v) list;
  combine : ('k -> 'v list -> 'v list) option;
  reduce : 'k -> 'v list -> 'b list;
  input_size : 'a -> int;
  key_size : 'k -> int;
  value_size : 'v -> int;
  output_size : 'b -> int;
}

type ('a, 'b) map_only_spec = {
  mo_name : string;
  mo_map : 'a -> 'b list;
  mo_input_size : 'a -> int;
  mo_output_size : 'b -> int;
}

(* Group (k, v) pairs by key, preserving the order in which keys first
   appear so that the simulator is deterministic end to end. Values within
   a group keep arrival order. *)
let group_pairs pairs =
  let tbl = Hashtbl.create 64 in
  let order = ref [] in
  List.iter
    (fun (k, v) ->
      match Hashtbl.find_opt tbl k with
      | Some cell -> cell := v :: !cell
      | None ->
        Hashtbl.add tbl k (ref [ v ]);
        order := k :: !order)
    pairs;
  List.rev_map (fun k -> (k, List.rev !(Hashtbl.find tbl k))) !order
  |> List.rev

let estimate_map_tasks cluster ~input_bytes =
  let splits =
    (input_bytes + cluster.Cluster.block_size_bytes - 1)
    / cluster.Cluster.block_size_bytes
  in
  max 1 splits

(* Partition the input into [n] map tasks of roughly equal record count.
   Hadoop splits by bytes; equal record counts are a fair stand-in since
   our records within one job are homogeneous. *)
let partition_input input n =
  let n = max 1 n in
  let arr = Array.of_list input in
  let len = Array.length arr in
  let per = max 1 ((len + n - 1) / n) in
  let rec go start acc =
    if start >= len then List.rev acc
    else
      let stop = min len (start + per) in
      go stop (Array.to_list (Array.sub arr start (stop - start)) :: acc)
  in
  if len = 0 then [ [] ] else go 0 []

let mb bytes = float_of_int bytes /. (1024.0 *. 1024.0)

let parallel_throughput ~per_node_mb_s ~tasks ~slots =
  let effective = min tasks slots in
  per_node_mb_s *. float_of_int (max 1 effective)

(* Record the job's telemetry into the context: per-phase spans on the
   simulated clock, then the clock advance and the counter bumps. *)
let record ctx (stats : Stats.job) ~phase_spans =
  let trace = Exec_ctx.trace ctx in
  let t0 = Trace.now_s trace in
  Trace.span trace ~name:stats.Stats.name ~cat:"job" ~start_s:t0
    ~dur_s:stats.Stats.est_time_s
    [
      ("map_tasks", Json.Int stats.Stats.map_tasks);
      ("reduce_tasks", Json.Int stats.Stats.reduce_tasks);
      ("input_bytes", Json.Int stats.Stats.input_bytes);
      ("shuffle_bytes", Json.Int stats.Stats.shuffle_bytes);
      ("output_bytes", Json.Int stats.Stats.output_bytes);
    ];
  let _ =
    List.fold_left
      (fun at (phase, dur_s, args) ->
        Trace.span trace
          ~name:(stats.Stats.name ^ "/" ^ phase)
          ~cat:"phase" ~start_s:at ~dur_s
          (("phase", Json.String phase) :: args);
        at +. dur_s)
      t0 phase_spans
  in
  Trace.advance trace stats.Stats.est_time_s;
  let m = Exec_ctx.metrics ctx in
  Metrics.add m "mr.jobs" 1;
  (match stats.Stats.kind with
  | Stats.Map_only -> Metrics.add m "mr.map_only_jobs" 1
  | Stats.Map_reduce -> ());
  Metrics.add m "mr.map_tasks" stats.Stats.map_tasks;
  Metrics.add m "mr.reduce_tasks" stats.Stats.reduce_tasks;
  Metrics.add m "mr.input_records" stats.Stats.input_records;
  Metrics.add m "mr.input_bytes" stats.Stats.input_bytes;
  Metrics.add m "mr.shuffle_records" stats.Stats.shuffle_records;
  Metrics.add m "mr.shuffle_bytes" stats.Stats.shuffle_bytes;
  Metrics.add m "mr.output_records" stats.Stats.output_records;
  Metrics.add m "mr.output_bytes" stats.Stats.output_bytes;
  Metrics.add m "mr.combine.input_records" stats.Stats.combine_input_records;
  Metrics.add m "mr.combine.output_records" stats.Stats.combine_output_records;
  Metrics.add m "mr.reduce.groups" stats.Stats.reduce_groups

let run ctx spec input =
  let cluster = Exec_ctx.cluster ctx in
  let input_records = List.length input in
  let input_bytes =
    List.fold_left (fun acc r -> acc + spec.input_size r) 0 input
  in
  let stored_bytes =
    int_of_float (float_of_int input_bytes *. cluster.Cluster.compression_ratio)
  in
  let map_tasks = estimate_map_tasks cluster ~input_bytes:stored_bytes in
  let task_inputs = partition_input input map_tasks in
  (* Map phase, with an optional per-task combiner. *)
  let combine_input = ref 0 in
  let shuffle_pairs =
    List.concat_map
      (fun task_input ->
        let emitted = List.concat_map spec.map task_input in
        combine_input := !combine_input + List.length emitted;
        match spec.combine with
        | None -> emitted
        | Some combine ->
          group_pairs emitted
          |> List.concat_map (fun (k, vs) ->
                 List.map (fun v -> (k, v)) (combine k vs)))
      task_inputs
  in
  let shuffle_records = List.length shuffle_pairs in
  let shuffle_bytes =
    List.fold_left
      (fun acc (k, v) -> acc + spec.key_size k + spec.value_size v + 12)
      0 shuffle_pairs
  in
  (* Shuffle + reduce. *)
  let groups = group_pairs shuffle_pairs in
  let output = List.concat_map (fun (k, vs) -> spec.reduce k vs) groups in
  let output_records = List.length output in
  let output_bytes =
    List.fold_left (fun acc r -> acc + spec.output_size r) 0 output
  in
  let reduce_tasks = min (max 1 (List.length groups)) (Cluster.reduce_slots cluster) in
  (* Map tasks are launched per stored (possibly compressed) split, but
     each task processes the uncompressed records: compression reduces
     parallelism, not work — the paper's observed ORC effect. *)
  let map_read_s =
    mb input_bytes
    /. parallel_throughput ~per_node_mb_s:cluster.Cluster.disk_mb_per_s
         ~tasks:map_tasks ~slots:(Cluster.map_slots cluster)
  in
  let shuffle_net_s =
    mb shuffle_bytes
    /. parallel_throughput ~per_node_mb_s:cluster.Cluster.network_mb_per_s
         ~tasks:reduce_tasks ~slots:(Cluster.reduce_slots cluster)
  in
  let shuffle_sort_s =
    mb shuffle_bytes
    /. parallel_throughput ~per_node_mb_s:cluster.Cluster.sort_mb_per_s
         ~tasks:reduce_tasks ~slots:(Cluster.reduce_slots cluster)
  in
  let shuffle_s = shuffle_net_s +. shuffle_sort_s in
  let reduce_write_s =
    mb output_bytes
    /. parallel_throughput ~per_node_mb_s:cluster.Cluster.disk_mb_per_s
         ~tasks:reduce_tasks ~slots:(Cluster.reduce_slots cluster)
  in
  (* Failed tasks are retried: the failed fraction of each phase's work
     is done twice (read + re-shuffle), modeled as proportional re-work. *)
  let retry = 1.0 +. (2.0 *. cluster.Cluster.task_failure_rate) in
  let est_time_s =
    cluster.Cluster.job_startup_s
    +. (retry *. (map_read_s +. shuffle_s +. reduce_write_s))
  in
  let combine_input_records = !combine_input in
  let combine_output_records = shuffle_records in
  let reduce_groups = List.length groups in
  let breakdown : Stats.breakdown =
    {
      startup_s = cluster.Cluster.job_startup_s;
      map_s = retry *. map_read_s;
      shuffle_s = retry *. shuffle_net_s;
      sort_s = retry *. shuffle_sort_s;
      reduce_s = retry *. reduce_write_s;
    }
  in
  let stats : Stats.job =
    {
      name = spec.name;
      kind = Stats.Map_reduce;
      input_records;
      input_bytes;
      shuffle_records;
      shuffle_bytes;
      output_records;
      output_bytes;
      map_tasks;
      reduce_tasks;
      est_time_s;
      breakdown;
      combine_input_records;
      combine_output_records;
      reduce_groups;
    }
  in
  let combine_span =
    match spec.combine with
    | None -> []
    | Some _ ->
      [
        ( "combine",
          0.0,
          [
            ("input_records", Json.Int combine_input_records);
            ("output_records", Json.Int combine_output_records);
          ] );
      ]
  in
  record ctx stats
    ~phase_spans:
      ([
         ("startup", breakdown.startup_s, []);
         ( "map-read",
           breakdown.map_s,
           [ ("input_records", Json.Int input_records) ] );
       ]
      @ combine_span
      @ [
          ( "shuffle",
            breakdown.shuffle_s,
            [ ("shuffle_records", Json.Int shuffle_records) ] );
          ("sort", breakdown.sort_s, []);
          ( "reduce-write",
            breakdown.reduce_s,
            [
              ("groups", Json.Int reduce_groups);
              ("output_records", Json.Int output_records);
            ] );
        ]);
  (output, stats)

let run_map_only ctx spec input =
  let cluster = Exec_ctx.cluster ctx in
  let input_records = List.length input in
  let input_bytes =
    List.fold_left (fun acc r -> acc + spec.mo_input_size r) 0 input
  in
  let stored_bytes =
    int_of_float (float_of_int input_bytes *. cluster.Cluster.compression_ratio)
  in
  let map_tasks = estimate_map_tasks cluster ~input_bytes:stored_bytes in
  let output = List.concat_map spec.mo_map input in
  let output_records = List.length output in
  let output_bytes =
    List.fold_left (fun acc r -> acc + spec.mo_output_size r) 0 output
  in
  let throughput =
    parallel_throughput ~per_node_mb_s:cluster.Cluster.disk_mb_per_s
      ~tasks:map_tasks ~slots:(Cluster.map_slots cluster)
  in
  let io_s = (mb input_bytes +. mb output_bytes) /. throughput in
  let retry = 1.0 +. (2.0 *. cluster.Cluster.task_failure_rate) in
  let est_time_s = cluster.Cluster.map_only_startup_s +. (retry *. io_s) in
  let breakdown : Stats.breakdown =
    {
      startup_s = cluster.Cluster.map_only_startup_s;
      map_s = retry *. io_s;
      shuffle_s = 0.0;
      sort_s = 0.0;
      reduce_s = 0.0;
    }
  in
  let stats : Stats.job =
    {
      name = spec.mo_name;
      kind = Stats.Map_only;
      input_records;
      input_bytes;
      shuffle_records = 0;
      shuffle_bytes = 0;
      output_records;
      output_bytes;
      map_tasks;
      reduce_tasks = 0;
      est_time_s;
      breakdown;
      combine_input_records = 0;
      combine_output_records = 0;
      reduce_groups = 0;
    }
  in
  record ctx stats
    ~phase_spans:
      [
        ("startup", breakdown.startup_s, []);
        ( "map-read",
          retry *. (mb input_bytes /. throughput),
          [ ("input_records", Json.Int input_records) ] );
        ( "map-write",
          retry *. (mb output_bytes /. throughput),
          [ ("output_records", Json.Int output_records) ] );
      ];
  (output, stats)
