(** Per-job and per-workflow statistics collected by the simulator. *)

type job_kind = Map_reduce | Map_only

(** Where a job's simulated time goes. All phase times include the
    failure-retry re-work, so
    [startup_s + map_s + shuffle_s + sort_s + reduce_s + spill_s
    = est_time_s]
    (up to float rounding). Map-only jobs charge all their I/O to
    [map_s]. *)
type breakdown = {
  startup_s : float;  (** fixed per-cycle scheduling/JVM cost *)
  map_s : float;  (** map-phase read (and, map-only, write) I/O *)
  shuffle_s : float;  (** network transfer of the shuffle *)
  sort_s : float;  (** merge sort of the shuffled pairs *)
  reduce_s : float;  (** reduce output write *)
  spill_s : float;
      (** memory-pressure surcharge: external-sort spill passes on the
          map and reduce sides, plus attempts wasted to OOM kills; 0.0
          under the default (generous) {!Memory.default} budget *)
}

val breakdown_zero : breakdown
val breakdown_add : breakdown -> breakdown -> breakdown

(** Sum of every phase including startup. *)
val breakdown_total_s : breakdown -> float

type job = {
  name : string;
  kind : job_kind;
  input_records : int;
  input_bytes : int;
  shuffle_records : int;  (** records emitted to the shuffle, post-combine *)
  shuffle_bytes : int;
  output_records : int;
  output_bytes : int;
  map_tasks : int;
  reduce_tasks : int;
  est_time_s : float;  (** simulated wall-clock from the cost model *)
  breakdown : breakdown;
  combine_input_records : int;
      (** map-emitted records entering the combiner (equals
          [combine_output_records] when the job has no combiner) *)
  combine_output_records : int;  (** records leaving the combiner *)
  reduce_groups : int;  (** distinct reduce keys (0 for map-only jobs) *)
  attempts_failed : int;  (** injected task-attempt crashes, retried *)
  speculative_launched : int;  (** speculative duplicate attempts started *)
  attempts_killed : int;  (** attempts killed after losing the race *)
  spilled_bytes : int;
      (** bytes written to (and re-read from) local disk by external-sort
          spill passes, summed over passes *)
  spill_passes : int;  (** total extra merge passes across all tasks *)
  oom_kills : int;
      (** task attempts killed for exceeding the container heap; each is
          retried and the task eventually reruns with its combiner
          disabled (degraded but completing) *)
  skipped_records : int;
      (** poison input records isolated by skip-mode bisection and
          dropped from the simulated map input (the real computation is
          untouched — skip mode shapes time, never answers) *)
}

type t = {
  jobs : job list;  (** in execution order *)
  lost_s : float;
      (** simulated time charged to failed job submissions (partial runs
          that aborted and were resubmitted) and their retry backoff;
          not part of any job's phase breakdown *)
  replayed_s : float;
      (** simulated time spent re-running already-completed jobs whose
          outputs were not checkpointed when a later submission failed
          (see {!Checkpoint}); like [lost_s], outside every breakdown *)
  recovered_jobs : int;
      (** completed jobs replayed across all recoveries (a job replayed
          by two separate recoveries counts twice) *)
  checkpoint_s : float;
      (** simulated time spent materializing job outputs to the
          distributed filesystem at checkpoint boundaries *)
  checkpoints_written : int;
  checkpoint_bytes : int;
      (** pre-replication payload bytes across all checkpoints *)
}

val empty : t
val append : t -> job -> t

(** [charge_lost t dt_s] adds time lost to a failed job submission. *)
val charge_lost : t -> float -> t

(** [charge_replay t ~jobs dt_s] adds time spent re-running [jobs]
    completed jobs after a failed submission exhausted its retries. *)
val charge_replay : t -> jobs:int -> float -> t

(** [charge_checkpoint t ~bytes dt_s] records one checkpoint of a
    [bytes]-byte job output costing [dt_s] simulated seconds. *)
val charge_checkpoint : t -> bytes:int -> float -> t

(** [job_slots j] is the job's peak concurrent slot demand:
    [max map_tasks reduce_tasks] (the phases run one after the other),
    floored at 1. The {!Scheduler} caps this at the cluster's pool. *)
val job_slots : job -> int

(** [slot_seconds t] is the workload's total slot occupancy,
    Σ {!job_slots} × [est_time_s] over the jobs — what the jobs cost the
    cluster, as opposed to {!est_time_s}, which is what they cost the
    querier. *)
val slot_seconds : t -> float

(** Total number of MR cycles (map-reduce + map-only jobs). *)
val cycles : t -> int

val map_only_cycles : t -> int
val full_cycles : t -> int
val total_input_bytes : t -> int
val total_shuffle_bytes : t -> int
val total_output_bytes : t -> int
val total_attempts_failed : t -> int
val total_speculative_launched : t -> int
val total_attempts_killed : t -> int
val total_spilled_bytes : t -> int
val total_spill_passes : t -> int
val total_oom_kills : t -> int
val total_skipped_records : t -> int

(** Time charged to aborted job submissions (see {!type:t}). *)
val lost_s : t -> float

val replayed_s : t -> float
val recovered_jobs : t -> int
val checkpoint_s : t -> float
val checkpoints_written : t -> int
val checkpoint_bytes : t -> int

(** Per-phase totals across all jobs. Excludes {!lost_s}, so under
    whole-job retries the breakdown covers [est_time_s - lost_s]. *)
val total_breakdown : t -> breakdown

(** Sum of per-job simulated times plus {!lost_s}, {!replayed_s} and
    {!checkpoint_s}: jobs in a workflow run sequentially, as in a Hadoop
    DAG of dependent stages. The recovery terms are exactly 0.0 when
    checkpointing is off, leaving the total bit-identical to a run
    without the recovery layer. *)
val est_time_s : t -> float

val job_to_json : job -> Json.t

(** Machine-consumable form: cycle counts, byte totals, per-phase time
    totals, and the per-job list. *)
val to_json : t -> Json.t

val pp_job : job Fmt.t
val pp : t Fmt.t
val pp_breakdown : breakdown Fmt.t

(** One-line summary: cycles, bytes, simulated seconds. *)
val pp_summary : t Fmt.t
