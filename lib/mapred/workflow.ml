let log_src = Logs.Src.create "rapida.mapred" ~doc:"MapReduce simulator jobs"

module Log = (val Logs.src_log log_src)

type t = { ctx : Exec_ctx.t; mutable stats : Stats.t }

let create ctx = { ctx; stats = Stats.empty }
let ctx t = t.ctx
let cluster t = Exec_ctx.cluster t.ctx

let run_job t spec input =
  let output, job_stats = Job.run t.ctx spec input in
  Log.debug (fun m -> m "%a" Stats.pp_job job_stats);
  t.stats <- Stats.append t.stats job_stats;
  output

let run_map_only t spec input =
  let output, job_stats = Job.run_map_only t.ctx spec input in
  Log.debug (fun m -> m "%a" Stats.pp_job job_stats);
  t.stats <- Stats.append t.stats job_stats;
  output

let stats t = t.stats
