let log_src = Logs.Src.create "rapida.mapred" ~doc:"MapReduce simulator jobs"

module Log = (val Logs.src_log log_src)

type t = {
  ctx : Exec_ctx.t;
  mutable stats : Stats.t;
  ckpt : Checkpoint.manager;
  mutable recoveries : int;
}

type abort = {
  a_failure : Job.failure;
  a_resubmissions : int;
  a_completed : int;
}

exception Aborted of abort

let pp_abort ppf a =
  Fmt.pf ppf
    "workflow aborted: %a (%d whole-job resubmission%s, %d job%s completed \
     before the abort)"
    Job.pp_failure a.a_failure a.a_resubmissions
    (if a.a_resubmissions = 1 then "" else "s")
    a.a_completed
    (if a.a_completed = 1 then "" else "s")

let create ctx =
  {
    ctx;
    stats = Stats.empty;
    ckpt = Checkpoint.manager (Exec_ctx.checkpoint ctx);
    recoveries = 0;
  }

let ctx t = t.ctx
let cluster t = Exec_ctx.cluster t.ctx

(* Safety valve: with recovery active a workflow keeps resubmitting
   until it completes; independent fault dice make eventual success
   certain, but a pathological configuration should fail loudly rather
   than loop. Far above anything a real sweep reaches. *)
let max_recoveries = 1000

(* Run one job submission with Hadoop-style whole-job resubmission: a
   [Job_failed] charges the doomed submission's partial runtime as lost
   time, then (while retries remain) waits out the backoff and resubmits
   with a bumped attempt number, re-rolling every injected fault
   decision. Out of retries, a checkpoint-disabled workflow aborts;
   under any active checkpoint policy it instead replays the completed
   jobs since the last checkpoint (charging their recorded simulated
   time to [Stats.replayed_s]) and keeps resubmitting — degrade but
   complete. Deterministic failures (user exceptions, poison beyond the
   skip tolerance) recur identically on every resubmission, so they
   abort even with recovery active. *)
let run_with_retries t name run =
  let cfg = Fault_injector.config (Exec_ctx.faults t.ctx) in
  let ckpt_cfg = Checkpoint.config t.ckpt in
  let trace = Exec_ctx.trace t.ctx in
  let metrics = Exec_ctx.metrics t.ctx in
  let charge_backoff next_submission =
    let backoff = cfg.Fault_injector.retry_backoff_s in
    if backoff > 0.0 then begin
      Trace.span trace ~name:(name ^ "/backoff") ~cat:"abort"
        ~start_s:(Trace.now_s trace) ~dur_s:backoff
        [ ("next_submission", Json.Int next_submission) ];
      Trace.advance trace backoff;
      t.stats <- Stats.charge_lost t.stats backoff
    end
  in
  let rec go attempt =
    match run ~attempt with
    | output, job_stats ->
      Log.debug (fun m -> m "%a" Stats.pp_job job_stats);
      t.stats <- Stats.append t.stats job_stats;
      (match
         Checkpoint.note_success t.ckpt ~cluster:(Exec_ctx.cluster t.ctx)
           job_stats
       with
      | None -> ()
      | Some d ->
        Trace.span trace ~name:(name ^ "/checkpoint") ~cat:"checkpoint"
          ~start_s:(Trace.now_s trace) ~dur_s:d.Checkpoint.ck_cost_s
          [
            ("bytes", Json.Int d.Checkpoint.ck_bytes);
            ("replication", Json.Int ckpt_cfg.Checkpoint.replication);
          ];
        Trace.advance trace d.Checkpoint.ck_cost_s;
        t.stats <-
          Stats.charge_checkpoint t.stats ~bytes:d.Checkpoint.ck_bytes
            d.Checkpoint.ck_cost_s;
        Metrics.add metrics "mr.checkpoints" 1;
        Metrics.add metrics "mr.checkpoint_bytes" d.Checkpoint.ck_bytes);
      output
    | exception Job.Job_failed f ->
      Log.warn (fun m ->
          m "submission %d of %S lost: %a" attempt name Job.pp_failure f);
      Trace.span trace ~name:(name ^ "/failed") ~cat:"abort"
        ~start_s:(Trace.now_s trace) ~dur_s:f.Job.f_elapsed_s
        [
          ("submission", Json.Int attempt);
          ("reason", Json.String f.Job.f_reason);
        ];
      Trace.advance trace f.Job.f_elapsed_s;
      t.stats <- Stats.charge_lost t.stats f.Job.f_elapsed_s;
      if attempt < cfg.Fault_injector.job_retries then begin
        Metrics.add metrics "mr.job_resubmissions" 1;
        charge_backoff (attempt + 1);
        go (attempt + 1)
      end
      else if
        Checkpoint.active ckpt_cfg
        && (not f.Job.f_deterministic)
        && t.recoveries < max_recoveries
      then begin
        (* Recovery: the workflow restarts from the last materialized
           output, re-running the completed jobs since then. Their
           recorded simulated time is charged as replay; the real
           results are deterministic and already in memory, so only the
           clock moves. *)
        t.recoveries <- t.recoveries + 1;
        let jobs, replay_s = Checkpoint.replay t.ckpt in
        Log.warn (fun m ->
            m "recovering %S: replaying %d job%s (%.1f s) since the last \
               checkpoint"
              name jobs
              (if jobs = 1 then "" else "s")
              replay_s);
        Trace.span trace ~name:(name ^ "/replay") ~cat:"replay"
          ~start_s:(Trace.now_s trace) ~dur_s:replay_s
          [ ("jobs", Json.Int jobs); ("recovery", Json.Int t.recoveries) ];
        Trace.advance trace replay_s;
        t.stats <- Stats.charge_replay t.stats ~jobs replay_s;
        Metrics.add metrics "mr.recoveries" 1;
        if jobs > 0 then Metrics.add metrics "mr.replayed_jobs" jobs;
        charge_backoff (attempt + 1);
        go (attempt + 1)
      end
      else
        raise
          (Aborted
             {
               a_failure = f;
               a_resubmissions = attempt;
               a_completed = Stats.cycles t.stats;
             })
  in
  go 0

let run_job t spec input =
  run_with_retries t spec.Job.name (fun ~attempt ->
      Job.run ~attempt t.ctx spec input)

let run_map_only t spec input =
  run_with_retries t spec.Job.mo_name (fun ~attempt ->
      Job.run_map_only ~attempt t.ctx spec input)

let stats t = t.stats
