let log_src = Logs.Src.create "rapida.mapred" ~doc:"MapReduce simulator jobs"

module Log = (val Logs.src_log log_src)

type t = { ctx : Exec_ctx.t; mutable stats : Stats.t }

type abort = {
  a_failure : Job.failure;
  a_resubmissions : int;
  a_completed : int;
}

exception Aborted of abort

let pp_abort ppf a =
  Fmt.pf ppf
    "workflow aborted: %a (%d whole-job resubmission%s, %d job%s completed \
     before the abort)"
    Job.pp_failure a.a_failure a.a_resubmissions
    (if a.a_resubmissions = 1 then "" else "s")
    a.a_completed
    (if a.a_completed = 1 then "" else "s")

let create ctx = { ctx; stats = Stats.empty }
let ctx t = t.ctx
let cluster t = Exec_ctx.cluster t.ctx

(* Run one job submission with Hadoop-style whole-job resubmission: a
   [Job_failed] charges the doomed submission's partial runtime as lost
   time, then (while retries remain) waits out the backoff and resubmits
   with a bumped attempt number, re-rolling every injected fault
   decision. Out of retries, the workflow aborts. *)
let run_with_retries t name run =
  let cfg = Fault_injector.config (Exec_ctx.faults t.ctx) in
  let trace = Exec_ctx.trace t.ctx in
  let metrics = Exec_ctx.metrics t.ctx in
  let rec go attempt =
    match run ~attempt with
    | output, job_stats ->
      Log.debug (fun m -> m "%a" Stats.pp_job job_stats);
      t.stats <- Stats.append t.stats job_stats;
      output
    | exception Job.Job_failed f ->
      Log.warn (fun m ->
          m "submission %d of %S lost: %a" attempt name Job.pp_failure f);
      Trace.span trace ~name:(name ^ "/failed") ~cat:"abort"
        ~start_s:(Trace.now_s trace) ~dur_s:f.Job.f_elapsed_s
        [
          ("submission", Json.Int attempt);
          ("reason", Json.String f.Job.f_reason);
        ];
      Trace.advance trace f.Job.f_elapsed_s;
      t.stats <- Stats.charge_lost t.stats f.Job.f_elapsed_s;
      if attempt < cfg.Fault_injector.job_retries then begin
        Metrics.add metrics "mr.job_resubmissions" 1;
        let backoff = cfg.Fault_injector.retry_backoff_s in
        if backoff > 0.0 then begin
          Trace.span trace ~name:(name ^ "/backoff") ~cat:"abort"
            ~start_s:(Trace.now_s trace) ~dur_s:backoff
            [ ("next_submission", Json.Int (attempt + 1)) ];
          Trace.advance trace backoff;
          t.stats <- Stats.charge_lost t.stats backoff
        end;
        go (attempt + 1)
      end
      else
        raise
          (Aborted
             {
               a_failure = f;
               a_resubmissions = attempt;
               a_completed = Stats.cycles t.stats;
             })
  in
  go 0

let run_job t spec input =
  run_with_retries t spec.Job.name (fun ~attempt ->
      Job.run ~attempt t.ctx spec input)

let run_map_only t spec input =
  run_with_retries t spec.Job.mo_name (fun ~attempt ->
      Job.run_map_only ~attempt t.ctx spec input)

let stats t = t.stats
