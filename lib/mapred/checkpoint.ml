type policy = Never | Every_k of int | Adaptive of int
type config = { policy : policy; replication : int }

let default = { policy = Never; replication = 3 }

let create cfg =
  (match cfg.policy with
  | Never -> ()
  | Every_k k ->
      if k < 1 then
        invalid_arg "Checkpoint.create: every-k interval must be >= 1"
  | Adaptive b ->
      if b < 1 then
        invalid_arg "Checkpoint.create: adaptive budget must be >= 1 byte");
  if cfg.replication < 1 then
    invalid_arg "Checkpoint.create: replication must be >= 1";
  cfg

let active cfg = cfg.policy <> Never

(* Spec parsing follows the --faults / --mem conventions: comma-separated
   key=value pairs, one-line diagnostics. *)

let parse_bytes key v =
  let fail () =
    Error
      (Printf.sprintf
         "--checkpoint: %s expects a size (bytes, or with a k/m/g suffix), \
          got %S"
         key v)
  in
  let scaled digits mult =
    match int_of_string_opt digits with
    | Some n when n > 0 -> Ok (n * mult)
    | _ -> fail ()
  in
  let n = String.length v in
  if n = 0 then fail ()
  else
    match v.[n - 1] with
    | 'k' | 'K' -> scaled (String.sub v 0 (n - 1)) 1024
    | 'm' | 'M' -> scaled (String.sub v 0 (n - 1)) (1024 * 1024)
    | 'g' | 'G' -> scaled (String.sub v 0 (n - 1)) (1024 * 1024 * 1024)
    | _ -> scaled v 1

let parse_int key v =
  match int_of_string_opt v with
  | Some n -> Ok n
  | None ->
      Error
        (Printf.sprintf "--checkpoint: %s expects an integer, got %S" key v)

let parse_spec spec =
  let ( let* ) = Result.bind in
  let parse_pair acc pair =
    let* cfg = acc in
    match String.index_opt pair '=' with
    | None when String.trim pair = "never" -> Ok { cfg with policy = Never }
    | None ->
        Error
          (Printf.sprintf "--checkpoint: expected key=value, got %S"
             (String.trim pair))
    | Some i ->
        let key = String.trim (String.sub pair 0 i) in
        let v =
          String.trim
            (String.sub pair (i + 1) (String.length pair - i - 1))
        in
        (match key with
        | "every" ->
            let* k = parse_int key v in
            Ok { cfg with policy = Every_k k }
        | "adaptive" ->
            let* b = parse_bytes key v in
            Ok { cfg with policy = Adaptive b }
        | "replication" ->
            let* r = parse_int key v in
            Ok { cfg with replication = r }
        | _ -> Error (Printf.sprintf "--checkpoint: unknown key %S" key))
  in
  let* cfg =
    List.fold_left parse_pair (Ok default)
      (String.split_on_char ',' spec |> List.filter (fun s -> s <> ""))
  in
  match create cfg with
  | cfg -> Ok cfg
  | exception Invalid_argument msg -> Error msg

let pp_bytes ppf b =
  if b >= 1024 * 1024 * 1024 && b mod (1024 * 1024 * 1024) = 0 then
    Fmt.pf ppf "%dg" (b / (1024 * 1024 * 1024))
  else if b >= 1024 * 1024 && b mod (1024 * 1024) = 0 then
    Fmt.pf ppf "%dm" (b / (1024 * 1024))
  else if b >= 1024 && b mod 1024 = 0 then Fmt.pf ppf "%dk" (b / 1024)
  else Fmt.pf ppf "%dB" b

let pp_policy ppf = function
  | Never -> Fmt.string ppf "never"
  | Every_k k -> Fmt.pf ppf "every-%d" k
  | Adaptive b -> Fmt.pf ppf "adaptive-%a" pp_bytes b

let pp ppf cfg =
  Fmt.pf ppf "checkpoint(policy=%a replication=%d)" pp_policy cfg.policy
    cfg.replication

type decision = { ck_bytes : int; ck_cost_s : float }

type manager = {
  cfg : config;
  mutable pending_jobs : int;
  mutable pending_s : float;
  mutable pending_bytes : int;
}

let manager cfg =
  { cfg = create cfg; pending_jobs = 0; pending_s = 0.0; pending_bytes = 0 }

let config m = m.cfg

(* A checkpoint writes [replication] copies of the job's output at the
   cluster's disk bandwidth. The write is performed by the tasks that
   produced the output — the reduce tasks (map tasks for a map-only
   job) — so, by work conservation, the payload is spread over
   [min writers slots] concurrent writers, like every other phase. *)
let price cluster ~replication (job : Stats.job) =
  let writers, slots =
    match job.Stats.kind with
    | Stats.Map_reduce ->
        (max 1 job.Stats.reduce_tasks, Cluster.reduce_slots cluster)
    | Stats.Map_only -> (max 1 job.Stats.map_tasks, Cluster.map_slots cluster)
  in
  let eff_writers = max 1 (min writers slots) in
  let mb = float_of_int job.Stats.output_bytes /. (1024.0 *. 1024.0) in
  float_of_int replication *. mb
  /. (cluster.Cluster.disk_mb_per_s *. float_of_int eff_writers)

let note_success m ~cluster (job : Stats.job) =
  match m.cfg.policy with
  | Never -> None
  | policy ->
      m.pending_jobs <- m.pending_jobs + 1;
      m.pending_s <- m.pending_s +. job.Stats.est_time_s;
      m.pending_bytes <- m.pending_bytes + job.Stats.output_bytes;
      let due =
        match policy with
        | Never -> false
        | Every_k k -> m.pending_jobs >= k
        | Adaptive budget -> m.pending_bytes >= budget
      in
      if not due then None
      else begin
        let d =
          {
            ck_bytes = job.Stats.output_bytes;
            ck_cost_s = price cluster ~replication:m.cfg.replication job;
          }
        in
        m.pending_jobs <- 0;
        m.pending_s <- 0.0;
        m.pending_bytes <- 0;
        Some d
      end

let replay m = (m.pending_jobs, m.pending_s)
