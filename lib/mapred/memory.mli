(** Per-task memory model for the MapReduce simulator.

    Hadoop tasks run with a bounded heap: the map side buffers its output
    in a sort buffer and spills sorted runs to local disk once a fill
    threshold is crossed ([io.sort.mb] / [io.sort.spill.percent]); the
    reduce side merges fetched segments under the same budget
    ([io.sort.factor]-way merges); and a task whose live working set (a
    combiner hash table, a map-join build side) exceeds the container
    heap is OOM-killed outright. This module holds the knobs and the
    arithmetic; {!Job} prices the consequences into simulated time, and
    {e only} time — results are byte-identical at every budget.

    The {!default} budget is generous enough that no catalog workload
    spills or OOMs, so default runs are byte-for-byte identical to a
    simulator without a memory model. *)

type config = {
  task_heap_bytes : int;
      (** hard per-task container heap; a working set above this is an
          OOM kill, not a spill *)
  sort_buffer_bytes : int;  (** in-memory sort buffer ([io.sort.mb]) *)
  spill_threshold : float;
      (** fill fraction of the sort buffer that triggers a spill
          ([io.sort.spill.percent]), in (0, 1] *)
}

(** 1 GiB heap, 256 MiB sort buffer, 0.8 spill threshold. *)
val default : config

(** Fan-in of one external-sort merge pass (Hadoop [io.sort.factor]). *)
val merge_factor : int

(** Validates ranges (positive sizes, threshold in (0, 1]); raises
    [Invalid_argument] otherwise. *)
val create : config -> config

(** Usable sort-buffer bytes before a spill triggers:
    [spill_threshold * sort_buffer_bytes], at least 1. *)
val spill_budget : config -> int

(** [spill_passes ~budget_bytes ~data_bytes] is the number of extra
    local-disk read+write passes an external sort of [data_bytes] needs
    with an in-memory budget of [budget_bytes]: [0] when the data fits
    ([data_bytes <= budget_bytes], including exactly at the boundary),
    else [ceil (log_merge_factor (ceil (data/budget)))]. Monotonically
    non-increasing in [budget_bytes]. *)
val spill_passes : budget_bytes:int -> data_bytes:int -> int

(** How many attempts of an over-heap task die to OOM before the
    escalation ladder disables its combiner and reruns it degraded:
    [min 2 (max_attempts - 1)] — the task always completes within its
    attempt budget, it never aborts the job. *)
val oom_attempts : max_attempts:int -> int

(** [parse_spec s] reads a CLI memory spec: comma-separated [key=value]
    pairs over [heap], [sort-buffer] (sizes in bytes, or with a
    [k]/[m]/[g] suffix) and [spill-threshold] (a float in (0, 1]);
    unspecified keys keep their {!default}. E.g.
    ["heap=64m,sort-buffer=1m"]. *)
val parse_spec : string -> (config, string) result

val pp : config Fmt.t
