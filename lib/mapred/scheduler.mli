(** Cluster scheduler: slot contention between concurrent workflows.

    The cost model prices each workflow as if it owned the whole cluster
    — correct for the paper's one-query-at-a-time experiments, wrong for
    a query server. This module layers admission-to-completion timing on
    top of already-priced workflows: each workflow is a sequence of jobs
    (its {!Stats.job} list, in execution order), each job demands up to
    {!Stats.job_slots} task slots and carries [est_time_s] of
    dedicated-cluster work, and concurrent workflows contend for the
    cluster's fixed slot pool under a FIFO or fair-share policy.

    The model is fluid (malleable tasks): a job granted [n] of its [d]
    demanded slots progresses at rate [n/d], so its slot-seconds consumed
    are exactly [d × est_time_s] regardless of the allocation path —
    contention stretches completion time, never the work. This keeps the
    per-workflow cost model untouched (answers and per-job stats are
    computed before scheduling) while queueing delay, makespan, and slot
    utilization come out of the contention simulation. *)

(** [Fifo] grants slots in submission order, head-of-line first, each
    active workflow's current job taking as many of its demanded slots
    as remain (Hadoop's classic FIFO scheduler). [Fair] is max-min fair:
    the pool is water-filled evenly across active workflows, excess
    beyond a job's demand redistributed to the still-hungry (Hadoop's
    fair scheduler in its fluid idealization). *)
type policy = Fifo | Fair

val policy_name : policy -> string
val policy_of_string : string -> policy option

(** One workflow submitted to the scheduler. *)
type item = {
  it_id : int;  (** caller's key, echoed in the placement *)
  it_submit_s : float;  (** admission time (simulated seconds) *)
  it_jobs : Stats.job list;  (** priced jobs, run in order *)
}

(** Where one workflow landed. [p_queue_s] is the contention delay:
    completion minus submission minus the workflow's dedicated-cluster
    execution time — 0 when the cluster was all its own. *)
type placement = {
  p_id : int;
  p_submit_s : float;
  p_start_s : float;  (** first instant any of its jobs held a slot *)
  p_finish_s : float;
  p_queue_s : float;
  p_slot_seconds : float;  (** Σ per-job [demand × est_time_s] *)
}

type t = {
  placements : placement list;  (** in [it_id] submission order *)
  makespan_s : float;  (** last finish − first submission *)
  busy_slot_seconds : float;
  capacity_slot_seconds : float;  (** slot pool × makespan *)
  utilization : float;  (** busy / capacity; 0 on an empty run *)
}

(** [simulate cluster policy items] runs the contention simulation over
    the cluster's map-slot pool. Deterministic: ties break on
    submission time then [it_id]. *)
val simulate : Cluster.t -> policy -> item list -> t

(** [placement t id] finds one workflow's placement. *)
val placement : t -> int -> placement option

(** [estimated_finish cluster policy items ~id] predicts when workflow
    [id] would complete under the given load: runs the contention
    simulation over [items] and reads off its finish time. This is the
    admission-control oracle — a server asks "if I admit this query on
    top of everything in flight, does it finish before its deadline?"
    before committing slots to it. [None] if [id] is not in [items]. *)
val estimated_finish :
  Cluster.t -> policy -> item list -> id:int -> float option
