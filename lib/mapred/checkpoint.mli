(** Workflow checkpointing and recovery policy.

    Hadoop workflows survive job failures by materializing intermediate
    job outputs to the distributed filesystem: when a later job exhausts
    its retries, the workflow restarts from the last materialized
    output instead of from scratch. This module prices that trade
    through the cost model — a checkpoint costs a replicated disk write
    of the job's output (spread over the writer slots, like every other
    phase), and a recovery replays the simulated time of every
    completed job since the last checkpoint.

    Everything here shapes simulated time and counters only. The real
    in-memory computation runs once and its results are never touched:
    robustness shapes time, never answers. *)

(** When to materialize a job's output.

    - [Never]: no checkpoints, no recovery — a workflow that exhausts
      its retries raises {!Workflow.Aborted}, exactly as before this
      module existed (the default; bit-identical cost model).
    - [Every_k k]: checkpoint after every [k]-th completed job
      ([k >= 1]). [Every_k 1] materializes everything: recoveries
      replay nothing, at maximal checkpoint cost.
    - [Adaptive budget]: checkpoint once at least [budget] bytes of
      un-materialized output have accumulated ([budget >= 1]) — cheap
      jobs ride for free, expensive outputs are protected. With an
      unreachable budget this is "recovery on, checkpoints off": a
      failure replays the whole plan, which is the reference point
      {!Experiment.recovery_sweep} compares savings against. *)
type policy = Never | Every_k of int | Adaptive of int

type config = {
  policy : policy;
  replication : int;  (** HDFS replication factor for checkpoint writes *)
}

(** [Never] with replication 3 (the HDFS default). *)
val default : config

(** [create cfg] validates [cfg].
    @raise Invalid_argument on [Every_k k] with [k < 1], [Adaptive b]
    with [b < 1], or [replication < 1]. *)
val create : config -> config

(** A config with any policy other than [Never] enables recovery. *)
val active : config -> bool

(** Parse a [--checkpoint] spec: comma-separated [key=value] pairs from
    [never], [every=K], [adaptive=BYTES] (with an optional k/m/g
    suffix), [replication=N]; later policy keys override earlier ones.
    Errors are one-line diagnostics prefixed with ["--checkpoint: "]. *)
val parse_spec : string -> (config, string) result

val pp_policy : policy Fmt.t
val pp : config Fmt.t

(** What one checkpoint costs: the payload written (pre-replication)
    and the simulated seconds charged. *)
type decision = { ck_bytes : int; ck_cost_s : float }

(** Mutable per-workflow state: the completed jobs (and their output
    bytes and simulated seconds) since the last checkpoint. *)
type manager

val manager : config -> manager
val config : manager -> config

(** [note_success m ~cluster job] records a completed job and decides
    whether to checkpoint its output. On [Some d], the manager's
    pending state has been reset and the caller should charge
    [d.ck_cost_s] ([replication] copies of the job's output written at
    the cluster's disk bandwidth, spread over the writer slots — the
    job's reduce tasks, or map tasks for a map-only job). [None] under
    [Never] or when the policy holds off. *)
val note_success : manager -> cluster:Cluster.t -> Stats.job -> decision option

(** [replay m] is [(jobs, seconds)]: the completed jobs since the last
    checkpoint and their summed simulated time — what a recovery must
    re-run. Does not reset the pending state: the replayed jobs are
    still un-materialized, so a second failure replays them again. *)
val replay : manager -> int * float
