(** Execution context for the MapReduce simulator.

    One context bundles everything a query execution threads through the
    stack: the cluster model the cost model prices against, the planner
    options the engines consult, a counter registry, and a trace sink
    recording per-phase spans. Every job run against a context appends to
    the same trace and counters, so a full query workflow — across
    engines' helper cycles — is observable end to end.

    Contexts are cheap; create a fresh one per query run so traces and
    counters attribute to a single execution. *)

(** Planner knobs shared by all engines (the fields mirror the paper's
    ablations; see {!Rapida_core.Plan_util.options} for the user-facing
    record that also picks the cluster). *)
type planner = {
  map_join_threshold : int;
      (** a join input below this many bytes is broadcast (Hive map-join) *)
  hive_compression : float;
      (** on-disk size ratio of the Hive engines' ORC-format tables *)
  ntga_combiner : bool;
      (** per-mapper partial aggregation in the NTGA Agg-Join cycles *)
  ntga_filter_pushdown : bool;
      (** evaluate star-local FILTERs during the map-side group filter *)
}

val default_planner : planner

type t

(** [create ?cluster ?planner ?faults ?checkpoint ?verify_plans ()] is a
    fresh context with empty metrics and trace. Defaults:
    {!Cluster.default}, {!default_planner}, an inactive
    {!Fault_injector.t} (healthy cluster), {!Checkpoint.default} (no
    checkpoints, no recovery), [verify_plans = false], and
    [analyze = false].

    @raise Invalid_argument on an invalid [checkpoint] config. *)
val create :
  ?cluster:Cluster.t ->
  ?planner:planner ->
  ?faults:Fault_injector.t ->
  ?checkpoint:Checkpoint.config ->
  ?verify_plans:bool ->
  ?analyze:bool ->
  ?optimize:bool ->
  ?join_orders:(int * int list) list ->
  unit ->
  t

val cluster : t -> Cluster.t
val planner : t -> planner

(** The fault injector every job run against this context consults for
    task-attempt crashes and stragglers. Inactive by default. *)
val faults : t -> Fault_injector.t

(** The checkpoint policy {!Workflow} runs under. {!Checkpoint.default}
    ([Never]) by default — no checkpoints, no recovery, and a cost model
    bit-identical to one without the recovery layer. *)
val checkpoint : t -> Checkpoint.config

(** Debug mode: when set, engines ask the registered static plan
    verifier (see [Rapida_core.Engine.set_default_verifier]) to re-check
    optimizer invariants and the result schema after every run.
    Verification is pure and out-of-band — it runs no simulated jobs, so
    enabling it never perturbs the cost model. *)
val verify_plans : t -> bool

(** When set, the caller wants the static cardinality analysis
    ([Rapida_analysis.Card_analysis]) reported alongside this
    execution — the [query --analyze] hook. Off by default; engines
    never read it, so execution and the cost model are byte-identical
    either way. The flag merely travels with the context so front ends
    can decide after the run whether to compare predicted and actual
    cardinalities. *)
val analyze : t -> bool

(** When set, the cost-based planner ([Rapida_planner]) is armed: the
    engines consult {!join_order} for enumerated star-join orders and
    front ends surface plan-cache / misestimate counters. Off by
    default; with it off (and [join_orders = []]) execution is
    byte-identical to a context without the optimizer layer. *)
val optimize : t -> bool

(** [join_order t key] is the optimizer-chosen star-id join order for
    the subquery (or composite) identified by [key], if any. Keys are
    subquery ids ([sq_id]); the reserved key [-1] carries the composite
    (MQO) plan's star order ([cs_id] space). [None] means "use the
    heuristic order" — the pre-optimizer behavior. The hints are plain
    ints so this module needs no dependency on the SPARQL front end. *)
val join_order : t -> int -> int list option

val metrics : t -> Metrics.t
val trace : t -> Trace.t

(** [with_cluster t cluster] prices jobs against [cluster] while sharing
    [t]'s planner, metrics, and trace — how the Hive engines apply their
    storage compression without forking the telemetry. *)
val with_cluster : t -> Cluster.t -> t
