type policy = Fifo | Fair

let policy_name = function Fifo -> "fifo" | Fair -> "fair"

let policy_of_string = function
  | "fifo" -> Some Fifo
  | "fair" -> Some Fair
  | _ -> None

type item = { it_id : int; it_submit_s : float; it_jobs : Stats.job list }

type placement = {
  p_id : int;
  p_submit_s : float;
  p_start_s : float;
  p_finish_s : float;
  p_queue_s : float;
  p_slot_seconds : float;
}

type t = {
  placements : placement list;
  makespan_s : float;
  busy_slot_seconds : float;
  capacity_slot_seconds : float;
  utilization : float;
}

let eps = 1e-9

(* A workflow in flight: its jobs collapse to (slot demand, remaining
   dedicated seconds) pairs — everything else about a job was priced
   before scheduling and does not move under contention. *)
type state = {
  st_id : int;
  st_submit : float;
  st_exec : float;
  st_slot_seconds : float;
  mutable st_jobs : (float * float) list;
  mutable st_start : float option;
  mutable st_finish : float option;
}

(* FIFO: walk the queue in submission order, the head of each workflow
   grabbing as much of its demand as the pool still holds. *)
let grant_fifo pool active =
  let left = ref pool in
  List.map
    (fun (st, demand) ->
      let n = Float.min demand !left in
      left := !left -. n;
      (st, demand, n))
    active

(* Max-min fairness with caps: split the leftover pool evenly among the
   still-hungry, peel off everyone whose demand fits under the even
   share, repeat. Terminates because each round either caps somebody or
   settles the rest at the share. *)
let grant_fair pool active =
  let rec fill left xs =
    match xs with
    | [] -> []
    | _ ->
      let share = left /. float_of_int (List.length xs) in
      let capped, hungry =
        List.partition (fun (_, demand) -> demand <= share +. eps) xs
      in
      if capped = [] then
        List.map (fun (st, demand) -> (st, demand, share)) xs
      else
        let used =
          List.fold_left (fun acc (_, d) -> acc +. d) 0.0 capped
        in
        List.map (fun (st, demand) -> (st, demand, demand)) capped
        @ fill (left -. used) hungry
  in
  fill pool active

let simulate cluster policy items =
  let pool_slots = max 1 (Cluster.map_slots cluster) in
  let pool = float_of_int pool_slots in
  let states =
    List.map
      (fun it ->
        let jobs =
          List.map
            (fun (j : Stats.job) ->
              (float_of_int (min (Stats.job_slots j) pool_slots),
               j.Stats.est_time_s))
            it.it_jobs
        in
        {
          st_id = it.it_id;
          st_submit = it.it_submit_s;
          st_exec =
            List.fold_left (fun acc (_, r) -> acc +. r) 0.0 jobs;
          st_slot_seconds =
            List.fold_left (fun acc (d, r) -> acc +. (d *. r)) 0.0 jobs;
          st_jobs = jobs;
          st_start = None;
          st_finish = None;
        })
      (List.sort
         (fun a b ->
           match compare a.it_submit_s b.it_submit_s with
           | 0 -> compare a.it_id b.it_id
           | c -> c)
         items)
  in
  let unfinished () = List.filter (fun s -> s.st_finish = None) states in
  let now = ref (match states with [] -> 0.0 | s :: _ -> s.st_submit) in
  let drain () =
    (* Retire zero-remaining head jobs (and empty workflows) at the
       current instant before handing out slots. *)
    List.iter
      (fun s ->
        if s.st_finish = None && s.st_submit <= !now +. eps then begin
          let rec pop () =
            match s.st_jobs with
            | (_, r) :: rest when r <= eps ->
              if s.st_start = None then s.st_start <- Some !now;
              s.st_jobs <- rest;
              pop ()
            | _ -> ()
          in
          pop ();
          if s.st_jobs = [] then begin
            if s.st_start = None then s.st_start <- Some !now;
            s.st_finish <- Some !now
          end
        end)
      states
  in
  let tick () =
    match unfinished () with
    | [] -> ()
    | pending ->
      let active, waiting =
        List.partition (fun s -> s.st_submit <= !now +. eps) pending
      in
      (match active with
      | [] ->
        (* Idle gap: jump to the next admission. *)
        now :=
          List.fold_left
            (fun acc s -> Float.min acc s.st_submit)
            Float.infinity waiting
      | _ ->
        let heads =
          List.map (fun s -> (s, fst (List.hd s.st_jobs))) active
        in
        let grants =
          match policy with
          | Fifo -> grant_fifo pool heads
          | Fair -> grant_fair pool heads
        in
        List.iter
          (fun (s, _, n) ->
            if n > eps && s.st_start = None then s.st_start <- Some !now)
          grants;
        (* Fluid advance to the next event: some granted head finishes
           (remaining ÷ rate, rate = granted/demand) or a new workflow
           arrives. Every candidate below is strictly positive, so the
           clock always moves. *)
        let dt =
          List.fold_left
            (fun acc (s, demand, n) ->
              if n <= eps then acc
              else
                let r = snd (List.hd s.st_jobs) in
                Float.min acc (r *. demand /. n))
            Float.infinity grants
        in
        let dt =
          List.fold_left
            (fun acc s -> Float.min acc (s.st_submit -. !now))
            dt waiting
        in
        List.iter
          (fun (s, demand, n) ->
            if n > eps then
              match s.st_jobs with
              | (d, r) :: rest ->
                s.st_jobs <- (d, r -. (dt *. n /. demand)) :: rest
              | [] -> ())
          grants;
        now := !now +. dt)
  in
  drain ();
  while unfinished () <> [] do
    tick ();
    drain ()
  done;
  let placements =
    List.map
      (fun s ->
        let finish = Option.value s.st_finish ~default:s.st_submit in
        let start = Option.value s.st_start ~default:s.st_submit in
        {
          p_id = s.st_id;
          p_submit_s = s.st_submit;
          p_start_s = start;
          p_finish_s = finish;
          p_queue_s = Float.max 0.0 (finish -. s.st_submit -. s.st_exec);
          p_slot_seconds = s.st_slot_seconds;
        })
      states
  in
  let busy =
    List.fold_left (fun acc p -> acc +. p.p_slot_seconds) 0.0 placements
  in
  let makespan =
    match placements with
    | [] -> 0.0
    | first :: _ ->
      let last_finish =
        List.fold_left
          (fun acc p -> Float.max acc p.p_finish_s)
          first.p_finish_s placements
      in
      Float.max 0.0 (last_finish -. first.p_submit_s)
  in
  let capacity = pool *. makespan in
  {
    placements;
    makespan_s = makespan;
    busy_slot_seconds = busy;
    capacity_slot_seconds = capacity;
    utilization = (if capacity > eps then busy /. capacity else 0.0);
  }

let placement t id = List.find_opt (fun p -> p.p_id = id) t.placements

let estimated_finish cluster policy items ~id =
  Option.map
    (fun p -> p.p_finish_s)
    (placement (simulate cluster policy items) id)
