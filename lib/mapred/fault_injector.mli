(** Deterministic fault injection for the MapReduce simulator.

    An injector decides, for every task attempt the simulator runs,
    whether that attempt crashes, straggles, or completes normally. The
    decision is a pure hash of [(seed, job, job_attempt, phase, task,
    attempt)] — no mutable PRNG state — so outcomes are reproducible
    regardless of evaluation order, and a whole-job retry (which bumps
    [job_attempt]) re-rolls every task's dice exactly as a fresh Hadoop
    job submission would.

    Fault tolerance is transparent by construction: the injector only
    shapes {e simulated time} and failure {e counters}. The real
    map/combine/reduce computation runs once over the actual data, so
    any configuration that does not exhaust a task's attempts yields
    byte-identical query results to a healthy run. *)

(** Simulated phase a task attempt belongs to. The reduce phase covers
    shuffle + sort + reduce-write: a reduce attempt that crashes redoes
    its fetch and sort, as in Hadoop. *)
type phase = Map | Reduce

val phase_name : phase -> string

type config = {
  seed : int;  (** root of every pseudo-random decision *)
  task_fail_p : float;  (** per task-attempt crash probability *)
  straggler_p : float;  (** per task-attempt straggler probability *)
  straggler_slowdown : float;
      (** how much slower a straggling attempt runs (e.g. 3.0 = 3x) *)
  max_attempts : int;
      (** attempts per task before the job fails (Hadoop
          [mapreduce.map/reduce.maxattempts], default 4) *)
  speculation : bool;
      (** launch a speculative duplicate of a straggling attempt and
          kill the loser (Hadoop speculative execution) *)
  job_retries : int;
      (** whole-job resubmissions a workflow performs after a
          [Job_failed] before aborting *)
  retry_backoff_s : float;
      (** simulated delay before each whole-job resubmission *)
  target : phase option;
      (** restrict injected faults to one phase; [None] = both *)
  poison_p : float;
      (** per input-record poison probability: a poisoned record crashes
          its map task at the same point on {e every} attempt, so
          ordinary retries never help and {!Job} must enter skip mode
          (see {!poisoned}) *)
  skip_max_records : int;
      (** skip-mode tolerance: records a job may skip before failing
          anyway (Hadoop [SkipBadRecords] semantics; 0 = skip mode off,
          the Hadoop default — a single poison record fails the job) *)
}

(** All probabilities zero — the healthy cluster. [max_attempts = 4],
    [straggler_slowdown = 3.0], [speculation = true], [job_retries = 0],
    [retry_backoff_s = 30.0], [target = None], [seed = 0]. *)
val default : config

type t

val create : config -> t
val config : t -> config

(** An injector with any non-zero fault probability. Inactive injectors
    leave the cost model byte-for-byte untouched. *)
val active : t -> bool

(** Whether poison records are being injected ([poison_p > 0]). *)
val poison_active : t -> bool

(** [poisoned t ~job ~record] decides whether global input record
    [record] of [job] is poison. Deliberately independent of both
    [job_attempt] and the per-task attempt number: poison is a property
    of the {e record}, so it crashes every retry of every resubmission
    identically — only skip-mode bisection gets past it. *)
val poisoned : t -> job:string -> record:int -> bool

type outcome =
  | Healthy
  | Crash of float
      (** attempt dies after completing this fraction of its work *)
  | Straggle  (** attempt runs at [1 / straggler_slowdown] speed *)

(** The deterministic fate of one task attempt. [job_attempt] counts
    whole-job resubmissions (0 = first submission); [attempt] counts
    per-task retries (1-based). *)
val attempt_outcome :
  t ->
  job:string ->
  job_attempt:int ->
  phase:phase ->
  task:int ->
  attempt:int ->
  outcome

(** What happened to one injected-upon task attempt. *)
type attempt_fate =
  | Crashed of float  (** died after completing this fraction of work *)
  | Speculated
      (** straggled; a speculative copy won and the original was killed *)
  | Straggled  (** straggled to completion (speculation off) *)
  | Oom_killed
      (** killed for exceeding the container heap (emitted by {!Job}'s
          memory model, not by {!attempt_outcome}: OOM is a deterministic
          consequence of the working-set estimate, not a random fate) *)
  | Poisoned
      (** crashed on a poison input record — a crash or bisection probe
          from skip mode (emitted by {!Job}'s skip machinery, driven by
          {!poisoned} rather than {!attempt_outcome}) *)

type attempt_event = {
  ev_task : int;
  ev_attempt : int;
  ev_fate : attempt_fate;
  ev_wasted_s : float;  (** re-work this event adds, in slot-seconds *)
}

(** Result of simulating one phase of one job under the injector. *)
type phase_sim = {
  elapsed_s : float;
      (** wall time of the phase including re-work: wasted crashed
          attempts, straggler slowdown or killed speculative originals,
          spread over the phase's task slots *)
  attempts_failed : int;  (** crashed task attempts *)
  speculative_launched : int;  (** speculative duplicates started *)
  attempts_killed : int;  (** attempts killed after losing the race *)
  events : attempt_event list;  (** every non-healthy attempt, in order *)
  exhausted : (int * int) option;
      (** [(task, attempts)] of the first task to burn every attempt;
          the job must fail *)
}

(** [simulate_phase t ~job ~job_attempt ~phase ~tasks ~slots ~base_s]
    replays [tasks] task attempts through the injector. [base_s] is the
    healthy wall-clock of the phase (work conserving: [tasks] tasks
    over [slots] slots), and the returned [elapsed_s] adds each wasted
    or slowed attempt's work on the same slots — so an inactive
    injector returns exactly [base_s]. Stops early (with [exhausted]
    set) when a task fails [max_attempts] times. *)
val simulate_phase :
  t ->
  job:string ->
  job_attempt:int ->
  phase:phase ->
  tasks:int ->
  slots:int ->
  base_s:float ->
  phase_sim

(** [parse_spec s] reads a CLI fault spec: comma-separated [key=value]
    pairs over [seed], [task-fail], [straggler], [slowdown],
    [max-attempts], [speculation] ([on]/[off]), [job-retries],
    [backoff], [phase] ([map]/[reduce]/[all]), [poison], [skip-max];
    unspecified keys keep their {!default}.
    E.g. ["seed=7,task-fail=0.05,straggler=0.1"]. *)
val parse_spec : string -> (config, string) result

val pp : t Fmt.t
