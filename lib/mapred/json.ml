type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_to_string f =
  if not (Float.is_finite f) then
    invalid_arg "Json: non-finite float";
  (* %.12g round-trips doubles well enough for simulated times and is
     always a valid JSON number (no trailing dot, exponent allowed). *)
  let s = Printf.sprintf "%.12g" f in
  (* "1." is not valid JSON; %g never produces it, but guard anyway. *)
  if String.length s > 0 && s.[String.length s - 1] = '.' then s ^ "0" else s

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_to_string f)
  | String s -> escape_to buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        to_buffer buf v)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_to buf k;
        Buffer.add_char buf ':';
        to_buffer buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing: a small recursive-descent reader for the same value space.
   Numbers without '.', 'e', or 'E' parse as Int (Float otherwise);
   \uXXXX escapes decode to UTF-8, pairing surrogates (a lone surrogate
   decodes to U+FFFD, matching common lenient JSON readers). *)

exception Parse_fail of string

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_fail (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    if !pos + String.length word <= n
       && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' -> (
        advance ();
        match peek () with
        | None -> fail "unterminated escape"
        | Some c ->
          advance ();
          (match c with
          | '"' -> Buffer.add_char buf '"'
          | '\\' -> Buffer.add_char buf '\\'
          | '/' -> Buffer.add_char buf '/'
          | 'n' -> Buffer.add_char buf '\n'
          | 'r' -> Buffer.add_char buf '\r'
          | 't' -> Buffer.add_char buf '\t'
          | 'b' -> Buffer.add_char buf '\b'
          | 'f' -> Buffer.add_char buf '\012'
          | 'u' ->
            let hex4 () =
              if !pos + 4 > n then fail "truncated \\u escape";
              let hex = String.sub s !pos 4 in
              pos := !pos + 4;
              match int_of_string_opt ("0x" ^ hex) with
              | Some code -> code
              | None -> fail "bad \\u escape"
            in
            let code = hex4 () in
            let uchar =
              if code >= 0xD800 && code <= 0xDBFF then
                (* High surrogate: pair with an immediately following
                   \uDC00-\uDFFF low surrogate; anything else leaves it
                   lone and it decodes as U+FFFD. *)
                if !pos + 2 <= n && s.[!pos] = '\\' && s.[!pos + 1] = 'u' then begin
                  let saved = !pos in
                  pos := !pos + 2;
                  let lo = hex4 () in
                  if lo >= 0xDC00 && lo <= 0xDFFF then
                    0x10000 + ((code - 0xD800) lsl 10) + (lo - 0xDC00)
                  else begin
                    pos := saved;
                    0xFFFD
                  end
                end
                else 0xFFFD
              else if code >= 0xDC00 && code <= 0xDFFF then 0xFFFD
              else code
            in
            Buffer.add_utf_8_uchar buf (Uchar.of_int uchar)
          | _ -> fail "unknown escape");
          go ())
      | Some c ->
        advance ();
        Buffer.add_char buf c;
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c when is_num_char c -> true | _ -> false) do
      advance ()
    done;
    let text = String.sub s start (!pos - start) in
    if String.exists (function '.' | 'e' | 'E' -> true | _ -> false) text then
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail "bad number"
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let items = ref [ parse_value () ] in
        let rec go () =
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items := parse_value () :: !items;
            go ()
          | Some ']' -> advance ()
          | _ -> fail "expected ',' or ']'"
        in
        go ();
        List (List.rev !items)
      end
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let fields = ref [ field () ] in
        let rec go () =
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields := field () :: !fields;
            go ()
          | Some '}' -> advance ()
          | _ -> fail "expected ',' or '}'"
        in
        go ();
        Obj (List.rev !fields)
      end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing content";
    v
  with
  | v -> Ok v
  | exception Parse_fail msg -> Error msg

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None
