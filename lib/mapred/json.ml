type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_to_string f =
  if not (Float.is_finite f) then
    invalid_arg "Json: non-finite float";
  (* %.12g round-trips doubles well enough for simulated times and is
     always a valid JSON number (no trailing dot, exponent allowed). *)
  let s = Printf.sprintf "%.12g" f in
  (* "1." is not valid JSON; %g never produces it, but guard anyway. *)
  if String.length s > 0 && s.[String.length s - 1] = '.' then s ^ "0" else s

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> Buffer.add_string buf (float_to_string f)
  | String s -> escape_to buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i v ->
        if i > 0 then Buffer.add_char buf ',';
        to_buffer buf v)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_to buf k;
        Buffer.add_char buf ':';
        to_buffer buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf
