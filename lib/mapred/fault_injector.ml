type phase = Map | Reduce

let phase_name = function Map -> "map" | Reduce -> "reduce"

type config = {
  seed : int;
  task_fail_p : float;
  straggler_p : float;
  straggler_slowdown : float;
  max_attempts : int;
  speculation : bool;
  job_retries : int;
  retry_backoff_s : float;
  target : phase option;
  poison_p : float;
  skip_max_records : int;
}

let default =
  {
    seed = 0;
    task_fail_p = 0.0;
    straggler_p = 0.0;
    straggler_slowdown = 3.0;
    max_attempts = 4;
    speculation = true;
    job_retries = 0;
    retry_backoff_s = 30.0;
    target = None;
    poison_p = 0.0;
    skip_max_records = 0;
  }

type t = config

let create cfg =
  if cfg.task_fail_p < 0.0 || cfg.task_fail_p >= 1.0 then
    invalid_arg "Fault_injector.create: task_fail_p must be in [0, 1)";
  if cfg.straggler_p < 0.0 || cfg.straggler_p > 1.0 then
    invalid_arg "Fault_injector.create: straggler_p must be in [0, 1]";
  if cfg.max_attempts < 1 then
    invalid_arg "Fault_injector.create: max_attempts must be >= 1";
  if cfg.straggler_slowdown < 1.0 then
    invalid_arg "Fault_injector.create: straggler_slowdown must be >= 1";
  if cfg.poison_p < 0.0 || cfg.poison_p >= 1.0 then
    invalid_arg "Fault_injector.create: poison_p must be in [0, 1)";
  if cfg.skip_max_records < 0 then
    invalid_arg "Fault_injector.create: skip_max_records must be >= 0";
  cfg

let config t = t
let active t = t.task_fail_p > 0.0 || t.straggler_p > 0.0 || t.poison_p > 0.0
let poison_active t = t.poison_p > 0.0

(* splitmix64: one mixing step. Used as a hash, not a stream — every
   decision hashes its full coordinates so outcomes are independent of
   the order the simulator asks in. *)
let mix64 z =
  let z = Int64.add z 0x9E3779B97F4A7C15L in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let mix_int h x = mix64 (Int64.logxor h (Int64.of_int x))

let hash_string h s =
  let acc = ref h in
  String.iter (fun c -> acc := mix_int !acc (Char.code c)) s;
  !acc

(* Top 53 bits as a float in [0, 1). *)
let u01 h =
  Int64.to_float (Int64.shift_right_logical h 11) /. 9007199254740992.0

let decision_hash t ~job ~job_attempt ~phase ~task ~attempt =
  let h = mix_int 0L t.seed in
  let h = hash_string h job in
  let h = mix_int h job_attempt in
  let h = mix_int h (match phase with Map -> 1 | Reduce -> 2) in
  let h = mix_int h task in
  mix_int h attempt

(* A poison record's identity deliberately excludes [job_attempt] and
   the per-task [attempt]: the same record crashes the task at the same
   point on every retry of every resubmission — that is what makes it
   poison, and why only skip mode (not retries) can get past it. The
   coordinate 3 tags the poison decision domain, disjoint from the
   phase coordinates (1 = map, 2 = reduce) used by attempt outcomes. *)
let poisoned t ~job ~record =
  t.poison_p > 0.0
  &&
  let h = mix_int 0L t.seed in
  let h = hash_string h job in
  let h = mix_int h 3 in
  u01 (mix_int h record) < t.poison_p

type outcome = Healthy | Crash of float | Straggle

let targets t phase =
  match t.target with None -> true | Some p -> p = phase

let attempt_outcome t ~job ~job_attempt ~phase ~task ~attempt =
  if not (active t && targets t phase) then Healthy
  else
    let h = decision_hash t ~job ~job_attempt ~phase ~task ~attempt in
    let crash_draw = u01 h in
    if crash_draw < t.task_fail_p then
      (* Crash point: how much of the attempt's work was done before the
         container died — in [0.1, 0.9] so a crash is never free and
         never a full duplicate. *)
      Crash (0.1 +. (0.8 *. u01 (mix_int h 1)))
    else if u01 (mix_int h 2) < t.straggler_p then Straggle
    else Healthy

type attempt_fate =
  | Crashed of float
  | Speculated
  | Straggled
  | Oom_killed
  | Poisoned

type attempt_event = {
  ev_task : int;
  ev_attempt : int;
  ev_fate : attempt_fate;
  ev_wasted_s : float;
}

type phase_sim = {
  elapsed_s : float;
  attempts_failed : int;
  speculative_launched : int;
  attempts_killed : int;
  events : attempt_event list;
  exhausted : (int * int) option;
}

let healthy_sim base_s =
  {
    elapsed_s = base_s;
    attempts_failed = 0;
    speculative_launched = 0;
    attempts_killed = 0;
    events = [];
    exhausted = None;
  }

let simulate_phase t ~job ~job_attempt ~phase ~tasks ~slots ~base_s =
  if not (active t && targets t phase) || tasks <= 0 || base_s <= 0.0 then
    healthy_sim base_s
  else begin
    let slots = max 1 (min tasks slots) in
    (* Work conservation: [base_s] is the wall time of [tasks] tasks over
       [slots] slots, so one task's serial work is [base_s * slots /
       tasks] slot-seconds. Every wasted or slowed attempt adds work on
       the same slots. *)
    let per_task_s = base_s *. float_of_int slots /. float_of_int tasks in
    let wasted = ref 0.0 in
    let failed = ref 0 in
    let speculative = ref 0 in
    let killed = ref 0 in
    let events = ref [] in
    let exhausted = ref None in
    let record_event ev_task ev_attempt ev_fate ev_wasted_s =
      wasted := !wasted +. ev_wasted_s;
      events := { ev_task; ev_attempt; ev_fate; ev_wasted_s } :: !events
    in
    (let task = ref 0 in
     while !exhausted = None && !task < tasks do
       let rec run_attempt attempt =
         match
           attempt_outcome t ~job ~job_attempt ~phase ~task:!task ~attempt
         with
         | Crash frac ->
           incr failed;
           record_event !task attempt (Crashed frac) (frac *. per_task_s);
           if attempt >= t.max_attempts then
             exhausted := Some (!task, attempt)
           else run_attempt (attempt + 1)
         | Straggle ->
           if t.speculation then begin
             (* The speculative copy finishes in normal time; the
                straggling original is killed after occupying its slot
                for that long. *)
             incr speculative;
             incr killed;
             record_event !task attempt Speculated per_task_s
           end
           else
             record_event !task attempt Straggled
               ((t.straggler_slowdown -. 1.0) *. per_task_s)
         | Healthy -> ()
       in
       run_attempt 1;
       incr task
     done);
    {
      elapsed_s = base_s +. (!wasted /. float_of_int slots);
      attempts_failed = !failed;
      speculative_launched = !speculative;
      attempts_killed = !killed;
      events = List.rev !events;
      exhausted = !exhausted;
    }
  end

(* --- CLI spec parsing --------------------------------------------------- *)

let parse_spec s =
  let ( let* ) = Result.bind in
  let parse_float key v =
    match float_of_string_opt v with
    | Some f -> Ok f
    | None -> Error (Printf.sprintf "--faults: %s expects a number, got %S" key v)
  in
  let parse_int key v =
    match int_of_string_opt v with
    | Some i -> Ok i
    | None ->
      Error (Printf.sprintf "--faults: %s expects an integer, got %S" key v)
  in
  let parse_pair cfg pair =
    match String.index_opt pair '=' with
    | None ->
      Error
        (Printf.sprintf "--faults: expected key=value, got %S" pair)
    | Some i -> (
      let key = String.sub pair 0 i in
      let v = String.sub pair (i + 1) (String.length pair - i - 1) in
      match key with
      | "seed" ->
        let* seed = parse_int key v in
        Ok { cfg with seed }
      | "task-fail" ->
        let* task_fail_p = parse_float key v in
        Ok { cfg with task_fail_p }
      | "straggler" ->
        let* straggler_p = parse_float key v in
        Ok { cfg with straggler_p }
      | "slowdown" ->
        let* straggler_slowdown = parse_float key v in
        Ok { cfg with straggler_slowdown }
      | "max-attempts" ->
        let* max_attempts = parse_int key v in
        Ok { cfg with max_attempts }
      | "speculation" -> (
        match v with
        | "on" -> Ok { cfg with speculation = true }
        | "off" -> Ok { cfg with speculation = false }
        | _ -> Error "--faults: speculation expects on or off")
      | "job-retries" ->
        let* job_retries = parse_int key v in
        Ok { cfg with job_retries }
      | "backoff" ->
        let* retry_backoff_s = parse_float key v in
        Ok { cfg with retry_backoff_s }
      | "phase" -> (
        match v with
        | "map" -> Ok { cfg with target = Some Map }
        | "reduce" -> Ok { cfg with target = Some Reduce }
        | "all" -> Ok { cfg with target = None }
        | _ -> Error "--faults: phase expects map, reduce, or all")
      | "poison" ->
        let* poison_p = parse_float key v in
        Ok { cfg with poison_p }
      | "skip-max" ->
        let* skip_max_records = parse_int key v in
        Ok { cfg with skip_max_records }
      | _ -> Error (Printf.sprintf "--faults: unknown key %S" key))
  in
  let* cfg =
    List.fold_left
      (fun acc pair ->
        let* cfg = acc in
        if pair = "" then Ok cfg else parse_pair cfg pair)
      (Ok default)
      (String.split_on_char ',' s)
  in
  match create cfg with
  | t -> Ok (config t)
  | exception Invalid_argument msg -> Error msg

let pp ppf t =
  Fmt.pf ppf
    "faults(seed=%d task-fail=%g straggler=%g slowdown=%gx max-attempts=%d \
     speculation=%s job-retries=%d backoff=%gs phase=%s poison=%g \
     skip-max=%d)"
    t.seed t.task_fail_p t.straggler_p t.straggler_slowdown t.max_attempts
    (if t.speculation then "on" else "off")
    t.job_retries t.retry_backoff_s
    (match t.target with None -> "all" | Some p -> phase_name p)
    t.poison_p t.skip_max_records
