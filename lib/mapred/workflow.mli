(** A workflow is a sequence of MapReduce jobs executed by one query plan.
    It runs against an {!Exec_ctx.t} (cluster model, trace, counters) and
    accumulates per-job statistics for the plan it executes. *)

(** Logs source for per-job debug lines (enable with
    [Logs.Src.set_level]). *)
val log_src : Logs.src

type t

(** A workflow that ran out of whole-job resubmissions (see
    {!Fault_injector.config}[.job_retries]) aborts. [a_resubmissions] is
    the number of failed submissions beyond the first; [a_completed] is
    how many jobs of the workflow finished before the abort. The time of
    every lost submission (plus retry backoff) is charged to
    {!Stats.lost_s}.

    With any {!Checkpoint} policy active, [Aborted] is reserved for
    {e deterministic} failures (a user function raising, poison records
    beyond the skip tolerance — see {!Job.failure.f_deterministic});
    every other failure recovers from the last checkpoint instead. *)
type abort = {
  a_failure : Job.failure;
  a_resubmissions : int;
  a_completed : int;
}

exception Aborted of abort

val pp_abort : abort Fmt.t

val create : Exec_ctx.t -> t

(** The execution context the workflow runs against. *)
val ctx : t -> Exec_ctx.t

(** Shorthand for [Exec_ctx.cluster (ctx t)]. *)
val cluster : t -> Cluster.t

(** [run_job wf spec input] executes a full map-reduce cycle, recording its
    stats in [wf] and its spans/counters in the context. A {!Job.Job_failed}
    submission is resubmitted up to the context's
    {!Fault_injector.config}[.job_retries] times (charging lost time and
    backoff), then the workflow aborts.

    Under an active {!Checkpoint} policy (see {!Exec_ctx.checkpoint})
    the workflow instead degrades but completes: each successful job may
    checkpoint its output (a [checkpoint] trace span, priced into
    {!Stats.checkpoint_s}), and a submission that exhausts its retries
    on a non-deterministic failure replays the completed jobs since the
    last checkpoint (a [replay] span, {!Stats.replayed_s}), backs off,
    and resubmits with fresh fault dice — never raising {!Aborted}.
    Replay is pure time accounting: the replayed jobs' results are
    deterministic and already computed, so the answer is byte-identical
    to a healthy run.

    @raise Aborted *)
val run_job : t -> ('a, 'k, 'v, 'b) Job.spec -> 'a list -> 'b list

(** [run_map_only wf spec input] executes a map-only cycle, with the same
    resubmission-then-abort behaviour as {!run_job}.

    @raise Aborted *)
val run_map_only : t -> ('a, 'b) Job.map_only_spec -> 'a list -> 'b list

(** Stats of all jobs run so far, in order. *)
val stats : t -> Stats.t
