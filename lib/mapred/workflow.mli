(** A workflow is a sequence of MapReduce jobs executed by one query plan.
    It runs against an {!Exec_ctx.t} (cluster model, trace, counters) and
    accumulates per-job statistics for the plan it executes. *)

(** Logs source for per-job debug lines (enable with
    [Logs.Src.set_level]). *)
val log_src : Logs.src

type t

val create : Exec_ctx.t -> t

(** The execution context the workflow runs against. *)
val ctx : t -> Exec_ctx.t

(** Shorthand for [Exec_ctx.cluster (ctx t)]. *)
val cluster : t -> Cluster.t

(** [run_job wf spec input] executes a full map-reduce cycle, recording its
    stats in [wf] and its spans/counters in the context. *)
val run_job : t -> ('a, 'k, 'v, 'b) Job.spec -> 'a list -> 'b list

(** [run_map_only wf spec input] executes a map-only cycle. *)
val run_map_only : t -> ('a, 'b) Job.map_only_spec -> 'a list -> 'b list

(** Stats of all jobs run so far, in order. *)
val stats : t -> Stats.t
