type event = {
  name : string;
  cat : string;
  ph : string;
  ts_us : float;
  dur_us : float;
  tid : int;
  args : (string * Json.t) list;
}

type t = {
  mutable rev_events : event list;
  mutable now_s : float;
}

let pid = 1

let create () =
  let t = { rev_events = []; now_s = 0.0 } in
  (* Name the single simulated process/thread so viewers label the rows. *)
  t.rev_events <-
    [
      {
        name = "thread_name";
        cat = "__metadata";
        ph = "M";
        ts_us = 0.0;
        dur_us = 0.0;
        tid = 1;
        args = [ ("name", Json.String "simulated cluster") ];
      };
      {
        name = "process_name";
        cat = "__metadata";
        ph = "M";
        ts_us = 0.0;
        dur_us = 0.0;
        tid = 1;
        args = [ ("name", Json.String "rapida MapReduce simulator") ];
      };
    ];
  t

let now_s t = t.now_s
let advance t dt_s = t.now_s <- t.now_s +. dt_s

let span t ~name ~cat ~start_s ~dur_s args =
  let e =
    {
      name;
      cat;
      ph = "X";
      ts_us = start_s *. 1e6;
      dur_us = dur_s *. 1e6;
      tid = 1;
      args;
    }
  in
  t.rev_events <- e :: t.rev_events

let events t = List.rev t.rev_events

let spans_with_cat t cat =
  List.filter (fun e -> e.ph = "X" && String.equal e.cat cat) (events t)

let event_to_json e =
  Json.Obj
    ([
       ("name", Json.String e.name);
       ("cat", Json.String e.cat);
       ("ph", Json.String e.ph);
       ("ts", Json.Float e.ts_us);
       ("pid", Json.Int pid);
       ("tid", Json.Int e.tid);
     ]
    @ (if e.ph = "X" then [ ("dur", Json.Float e.dur_us) ] else [])
    @ match e.args with [] -> [] | args -> [ ("args", Json.Obj args) ])

let to_json t =
  Json.Obj
    [
      ("traceEvents", Json.List (List.map event_to_json (events t)));
      ("displayTimeUnit", Json.String "ms");
    ]

let to_string t = Json.to_string (to_json t)

let write_file t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string t);
      output_char oc '\n')
