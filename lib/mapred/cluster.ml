type t = {
  nodes : int;
  map_slots_per_node : int;
  reduce_slots_per_node : int;
  disk_mb_per_s : float;
  network_mb_per_s : float;
  job_startup_s : float;
  map_only_startup_s : float;
  block_size_bytes : int;
  sort_mb_per_s : float;
  compression_ratio : float;
  task_heap_bytes : int;
  sort_buffer_bytes : int;
  spill_threshold : float;
}

let default =
  {
    nodes = 10;
    map_slots_per_node = 2;
    reduce_slots_per_node = 2;
    disk_mb_per_s = 60.0;
    network_mb_per_s = 30.0;
    job_startup_s = 18.0;
    map_only_startup_s = 8.0;
    block_size_bytes = 128 * 1024 * 1024;
    sort_mb_per_s = 80.0;
    compression_ratio = 1.0;
    task_heap_bytes = Memory.default.Memory.task_heap_bytes;
    sort_buffer_bytes = Memory.default.Memory.sort_buffer_bytes;
    spill_threshold = Memory.default.Memory.spill_threshold;
  }

let vcl ~nodes = { default with nodes }

let scaled_down ~factor =
  {
    default with
    disk_mb_per_s = default.disk_mb_per_s /. factor;
    network_mb_per_s = default.network_mb_per_s /. factor;
    sort_mb_per_s = default.sort_mb_per_s /. factor;
    block_size_bytes = 32 * 1024;
  }

let memory c =
  {
    Memory.task_heap_bytes = c.task_heap_bytes;
    sort_buffer_bytes = c.sort_buffer_bytes;
    spill_threshold = c.spill_threshold;
  }

let with_memory c m =
  {
    c with
    task_heap_bytes = m.Memory.task_heap_bytes;
    sort_buffer_bytes = m.Memory.sort_buffer_bytes;
    spill_threshold = m.Memory.spill_threshold;
  }

let map_slots c = c.nodes * c.map_slots_per_node
let reduce_slots c = c.nodes * c.reduce_slots_per_node

let pp ppf c =
  Fmt.pf ppf "cluster(%d nodes, %d map slots, %d reduce slots)" c.nodes
    (map_slots c) (reduce_slots c)
