(** A registry of named monotonic counters.

    Execution contexts carry one registry; the simulator bumps counters
    as jobs run (records, bytes, tasks, combiner activity) so callers can
    attribute work without parsing per-job stats. Counter names are
    dot-separated, e.g. ["mr.shuffle_bytes"]. *)

type t

val create : unit -> t

(** [add t name n] bumps counter [name] by [n], creating it at 0 first. *)
val add : t -> string -> int -> unit

(** [get t name] is the counter's value, 0 when never bumped. *)
val get : t -> string -> int

(** All counters in name order. *)
val to_alist : t -> (string * int) list

val to_json : t -> Json.t
val pp : t Fmt.t
