type config = {
  task_heap_bytes : int;
  sort_buffer_bytes : int;
  spill_threshold : float;
}

let default =
  {
    task_heap_bytes = 1024 * 1024 * 1024;
    sort_buffer_bytes = 256 * 1024 * 1024;
    spill_threshold = 0.8;
  }

let merge_factor = 10

let create cfg =
  if cfg.task_heap_bytes < 1 then
    invalid_arg "Memory.create: task_heap_bytes must be >= 1";
  if cfg.sort_buffer_bytes < 1 then
    invalid_arg "Memory.create: sort_buffer_bytes must be >= 1";
  if cfg.spill_threshold <= 0.0 || cfg.spill_threshold > 1.0 then
    invalid_arg "Memory.create: spill_threshold must be in (0, 1]";
  cfg

let spill_budget cfg =
  max 1
    (int_of_float (cfg.spill_threshold *. float_of_int cfg.sort_buffer_bytes))

let spill_passes ~budget_bytes ~data_bytes =
  let budget = max 1 budget_bytes in
  if data_bytes <= budget then 0
  else
    (* External sort: the buffer fills [runs] times producing sorted runs
       on local disk, then [merge_factor]-way merge passes reduce them to
       one — each pass re-reads and re-writes the whole dataset. *)
    let runs = (data_bytes + budget - 1) / budget in
    let rec merge passes runs =
      if runs <= 1 then passes
      else merge (passes + 1) ((runs + merge_factor - 1) / merge_factor)
    in
    merge 0 runs

let oom_attempts ~max_attempts = min 2 (max 0 (max_attempts - 1))

(* --- CLI spec parsing --------------------------------------------------- *)

let parse_bytes key v =
  let fail () =
    Error
      (Printf.sprintf
         "--mem: %s expects a size (bytes, or with a k/m/g suffix), got %S" key
         v)
  in
  let n = String.length v in
  if n = 0 then fail ()
  else
    let unit_, digits =
      match Char.lowercase_ascii v.[n - 1] with
      | 'k' -> (1024, String.sub v 0 (n - 1))
      | 'm' -> (1024 * 1024, String.sub v 0 (n - 1))
      | 'g' -> (1024 * 1024 * 1024, String.sub v 0 (n - 1))
      | _ -> (1, v)
    in
    match int_of_string_opt digits with
    | Some i when i >= 0 -> Ok (i * unit_)
    | _ -> fail ()

let parse_spec s =
  let ( let* ) = Result.bind in
  let parse_float key v =
    match float_of_string_opt v with
    | Some f -> Ok f
    | None -> Error (Printf.sprintf "--mem: %s expects a number, got %S" key v)
  in
  let parse_pair cfg pair =
    match String.index_opt pair '=' with
    | None -> Error (Printf.sprintf "--mem: expected key=value, got %S" pair)
    | Some i -> (
      let key = String.sub pair 0 i in
      let v = String.sub pair (i + 1) (String.length pair - i - 1) in
      match key with
      | "heap" ->
        let* task_heap_bytes = parse_bytes key v in
        Ok { cfg with task_heap_bytes }
      | "sort-buffer" ->
        let* sort_buffer_bytes = parse_bytes key v in
        Ok { cfg with sort_buffer_bytes }
      | "spill-threshold" ->
        let* spill_threshold = parse_float key v in
        Ok { cfg with spill_threshold }
      | _ -> Error (Printf.sprintf "--mem: unknown key %S" key))
  in
  let* cfg =
    List.fold_left
      (fun acc pair ->
        let* cfg = acc in
        if pair = "" then Ok cfg else parse_pair cfg pair)
      (Ok default)
      (String.split_on_char ',' s)
  in
  match create cfg with
  | cfg -> Ok cfg
  | exception Invalid_argument msg -> Error msg

let pp_bytes ppf b =
  if b >= 1024 * 1024 * 1024 && b mod (1024 * 1024 * 1024) = 0 then
    Fmt.pf ppf "%dg" (b / (1024 * 1024 * 1024))
  else if b >= 1024 * 1024 && b mod (1024 * 1024) = 0 then
    Fmt.pf ppf "%dm" (b / (1024 * 1024))
  else if b >= 1024 && b mod 1024 = 0 then Fmt.pf ppf "%dk" (b / 1024)
  else Fmt.pf ppf "%d" b

let pp ppf cfg =
  Fmt.pf ppf "mem(heap=%a sort-buffer=%a spill-threshold=%g)" pp_bytes
    cfg.task_heap_bytes pp_bytes cfg.sort_buffer_bytes cfg.spill_threshold
