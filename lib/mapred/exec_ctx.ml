type planner = {
  map_join_threshold : int;
  hive_compression : float;
  ntga_combiner : bool;
  ntga_filter_pushdown : bool;
}

let default_planner =
  {
    map_join_threshold = 64 * 1024;
    hive_compression = 0.06;
    ntga_combiner = true;
    ntga_filter_pushdown = true;
  }

type t = {
  cluster : Cluster.t;
  planner : planner;
  metrics : Metrics.t;
  trace : Trace.t;
}

let create ?(cluster = Cluster.default) ?(planner = default_planner) () =
  { cluster; planner; metrics = Metrics.create (); trace = Trace.create () }

let cluster t = t.cluster
let planner t = t.planner
let metrics t = t.metrics
let trace t = t.trace
let with_cluster t cluster = { t with cluster }
