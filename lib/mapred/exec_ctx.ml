type planner = {
  map_join_threshold : int;
  hive_compression : float;
  ntga_combiner : bool;
  ntga_filter_pushdown : bool;
}

let default_planner =
  {
    map_join_threshold = 64 * 1024;
    hive_compression = 0.06;
    ntga_combiner = true;
    ntga_filter_pushdown = true;
  }

type t = {
  cluster : Cluster.t;
  planner : planner;
  faults : Fault_injector.t;
  checkpoint : Checkpoint.config;
  verify_plans : bool;
  analyze : bool;
  optimize : bool;
  join_orders : (int * int list) list;
  metrics : Metrics.t;
  trace : Trace.t;
}

let create ?(cluster = Cluster.default) ?(planner = default_planner)
    ?(faults = Fault_injector.create Fault_injector.default)
    ?(checkpoint = Checkpoint.default) ?(verify_plans = false)
    ?(analyze = false) ?(optimize = false) ?(join_orders = []) () =
  {
    cluster;
    planner;
    faults;
    checkpoint = Checkpoint.create checkpoint;
    verify_plans;
    analyze;
    optimize;
    join_orders;
    metrics = Metrics.create ();
    trace = Trace.create ();
  }

let cluster t = t.cluster
let planner t = t.planner
let faults t = t.faults
let checkpoint t = t.checkpoint
let verify_plans t = t.verify_plans
let analyze t = t.analyze
let optimize t = t.optimize
let join_order t key = List.assoc_opt key t.join_orders
let metrics t = t.metrics
let trace t = t.trace
let with_cluster t cluster = { t with cluster }
