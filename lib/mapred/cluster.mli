(** Cluster configuration for the MapReduce simulator.

    The parameters mirror the knobs that dominate Hadoop job latency on the
    clusters used in the paper (NCSU VCL, dual-core nodes, 128 MB blocks):
    a fixed per-job startup cost (job scheduling + JVM spin-up + the
    shuffle barrier), disk and network bandwidth, and slot-limited task
    parallelism. On such clusters the per-job startup is what makes the
    number of MR cycles the dominant term for analytical queries — the
    effect the paper's optimizations target. *)

type t = {
  nodes : int;
  map_slots_per_node : int;
  reduce_slots_per_node : int;
  disk_mb_per_s : float;  (** per-node sequential read/write bandwidth *)
  network_mb_per_s : float;  (** per-node shuffle bandwidth *)
  job_startup_s : float;  (** fixed cost of a full map-reduce cycle *)
  map_only_startup_s : float;  (** fixed cost of a map-only cycle *)
  block_size_bytes : int;  (** input split size; determines map tasks *)
  sort_mb_per_s : float;  (** CPU throughput of the shuffle sort *)
  compression_ratio : float;
      (** on-disk size multiplier for stored inputs (e.g. ORC ~ 0.15);
          1.0 = uncompressed *)
  task_heap_bytes : int;
      (** per-task container heap; see {!Memory.config.task_heap_bytes} *)
  sort_buffer_bytes : int;
      (** per-task in-memory sort buffer; see
          {!Memory.config.sort_buffer_bytes} *)
  spill_threshold : float;
      (** sort-buffer fill fraction that triggers a spill; see
          {!Memory.config.spill_threshold} *)
}

(** A 10-node VCL-like cluster, matching the paper's small setup. *)
val default : t

(** [vcl ~nodes] is [default] scaled to [nodes] nodes. *)
val vcl : nodes:int -> t

(** [scaled_down ~factor] divides the bandwidth parameters by [factor]
    while keeping the per-job startup costs, and sets a 32 KB block size
    appropriate for KB-to-MB datasets. Benchmarks use this to preserve
    the paper's data-to-infrastructure ratio: the paper ran ~43 GB
    datasets on the [default] cluster, this repo runs datasets ~10^5
    times smaller, so a factor near 1e5 makes the relative weight of job
    startup vs. data movement match the paper's regime. *)
val scaled_down : factor:float -> t

(** The cluster's per-task memory budget as a {!Memory.config}. The
    {!default} cluster carries {!Memory.default} — generous enough that
    nothing spills, keeping the cost model byte-identical to an
    unbounded simulator. *)
val memory : t -> Memory.config

(** [with_memory c m] is [c] with its memory knobs replaced by [m]
    (the CLI's [--mem SPEC] lands here). *)
val with_memory : t -> Memory.config -> t

(** Total map (resp. reduce) slots in the cluster. *)
val map_slots : t -> int

val reduce_slots : t -> int

val pp : t Fmt.t
