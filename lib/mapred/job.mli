(** MapReduce job execution.

    A job spec bundles the map / combine / reduce functions together with
    size estimators used by the cost model. Keys must be hashable and
    comparable with the polymorphic primitives (use plain data: strings,
    ints, tuples, RDF terms — no closures).

    Execution is real: map functions run over the actual input records,
    combiners run per map task, reducers run per key group. Only the time
    is simulated. Key groups are processed in first-seen order so the whole
    pipeline is deterministic.

    Jobs run against an {!Exec_ctx.t}: the context's cluster prices the
    job, and every run appends one span per simulated phase to the
    context's trace, advances its simulated clock, and bumps its
    counters. *)

type ('a, 'k, 'v, 'b) spec = {
  name : string;
  map : 'a -> ('k * 'v) list;
  combine : ('k -> 'v list -> 'v list) option;
      (** optional per-map-task partial aggregation ("local combiner") *)
  reduce : 'k -> 'v list -> 'b list;
  input_size : 'a -> int;
  key_size : 'k -> int;
  value_size : 'v -> int;
  output_size : 'b -> int;
}

type ('a, 'b) map_only_spec = {
  mo_name : string;
  mo_map : 'a -> 'b list;
  mo_input_size : 'a -> int;
  mo_output_size : 'b -> int;
}

(** [run ctx spec input] executes a full map-reduce cycle and returns
    the reducer outputs (in key-first-seen order) plus the job stats. *)
val run : Exec_ctx.t -> ('a, 'k, 'v, 'b) spec -> 'a list -> 'b list * Stats.job

(** [run_map_only ctx spec input] executes a map-only cycle. *)
val run_map_only :
  Exec_ctx.t -> ('a, 'b) map_only_spec -> 'a list -> 'b list * Stats.job

(** [estimate_map_tasks cluster ~input_bytes] is the number of map tasks a
    job with that much (compressed) input would launch: one per input
    split, at least 1. Exposed for tests and for engines that reason about
    mapper parallelism (the ORC effect in §5.2). *)
val estimate_map_tasks : Cluster.t -> input_bytes:int -> int
