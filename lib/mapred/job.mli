(** MapReduce job execution.

    A job spec bundles the map / combine / reduce functions together with
    size estimators used by the cost model. Keys must be hashable and
    comparable with the polymorphic primitives (use plain data: strings,
    ints, tuples, RDF terms — no closures).

    Execution is real: map functions run over the actual input records,
    combiners run per map task, reducers run per key group. Only the time
    is simulated. Key groups are processed in first-seen order so the whole
    pipeline is deterministic.

    Jobs run against an {!Exec_ctx.t}: the context's cluster prices the
    job, and every run appends one span per simulated phase to the
    context's trace, advances its simulated clock, and bumps its
    counters. *)

type ('a, 'k, 'v, 'b) spec = {
  name : string;
  map : 'a -> ('k * 'v) list;
  combine : ('k -> 'v list -> 'v list) option;
      (** optional per-map-task partial aggregation ("local combiner") *)
  reduce : 'k -> 'v list -> 'b list;
  input_size : 'a -> int;
  key_size : 'k -> int;
  value_size : 'v -> int;
  output_size : 'b -> int;
}

type ('a, 'b) map_only_spec = {
  mo_name : string;
  mo_map : 'a -> 'b list;
  mo_input_size : 'a -> int;
  mo_output_size : 'b -> int;
}

(** Why a job died: the task that burned all of its attempts. [f_reason]
    distinguishes injected attempt crashes from a user map/combine/reduce
    function raising (the exception's text). [f_elapsed_s] is the
    simulated time the failed submission consumed before dying.
    [f_deterministic] marks failures that recur identically on every
    resubmission (user exceptions, poison records beyond the skip
    tolerance): {!Workflow}'s checkpoint recovery must not retry them. *)
type failure = {
  f_job : string;
  f_phase : Fault_injector.phase;
  f_task : int;
  f_attempts : int;
  f_reason : string;
  f_elapsed_s : float;
  f_deterministic : bool;
}

(** Raised when a task exhausts its attempts ({!Fault_injector} crashes
    or a deterministic user-code exception). {!Workflow} catches this and
    either resubmits the whole job or aborts the workflow — it should not
    escape to callers of the engines. *)
exception Job_failed of failure

val pp_failure : failure Fmt.t

(** [run ctx spec input] executes a full map-reduce cycle and returns
    the reducer outputs (in key-first-seen order) plus the job stats.

    [attempt] is the whole-job submission number (0 = first submission);
    resubmitting with a higher [attempt] re-rolls every injected fault
    decision — except poison records, whose fate is attempt-independent:
    a poisoned map task burns [max_attempts] crashes, bisects to the
    record, and skips it within
    {!Fault_injector.config.skip_max_records} (counted in
    [Stats.skipped_records] and priced into the map phase), failing the
    job beyond that tolerance. Raises {!Job_failed} when a task exhausts
    its attempts.

    @raise Job_failed *)
val run :
  ?attempt:int ->
  Exec_ctx.t ->
  ('a, 'k, 'v, 'b) spec ->
  'a list ->
  'b list * Stats.job

(** [run_map_only ctx spec input] executes a map-only cycle.

    @raise Job_failed *)
val run_map_only :
  ?attempt:int ->
  Exec_ctx.t ->
  ('a, 'b) map_only_spec ->
  'a list ->
  'b list * Stats.job

(** [estimate_map_tasks cluster ~input_bytes] is the number of map tasks a
    job with that much (compressed) input would launch: one per input
    split, at least 1. Exposed for tests and for engines that reason about
    mapper parallelism (the ORC effect in §5.2). *)
val estimate_map_tasks : Cluster.t -> input_bytes:int -> int
