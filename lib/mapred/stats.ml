type job_kind = Map_reduce | Map_only

type breakdown = {
  startup_s : float;
  map_s : float;
  shuffle_s : float;
  sort_s : float;
  reduce_s : float;
  spill_s : float;
}

let breakdown_zero =
  {
    startup_s = 0.0;
    map_s = 0.0;
    shuffle_s = 0.0;
    sort_s = 0.0;
    reduce_s = 0.0;
    spill_s = 0.0;
  }

let breakdown_add a b =
  {
    startup_s = a.startup_s +. b.startup_s;
    map_s = a.map_s +. b.map_s;
    shuffle_s = a.shuffle_s +. b.shuffle_s;
    sort_s = a.sort_s +. b.sort_s;
    reduce_s = a.reduce_s +. b.reduce_s;
    spill_s = a.spill_s +. b.spill_s;
  }

let breakdown_total_s b =
  b.startup_s +. b.map_s +. b.shuffle_s +. b.sort_s +. b.reduce_s +. b.spill_s

type job = {
  name : string;
  kind : job_kind;
  input_records : int;
  input_bytes : int;
  shuffle_records : int;
  shuffle_bytes : int;
  output_records : int;
  output_bytes : int;
  map_tasks : int;
  reduce_tasks : int;
  est_time_s : float;
  breakdown : breakdown;
  combine_input_records : int;
  combine_output_records : int;
  reduce_groups : int;
  attempts_failed : int;
  speculative_launched : int;
  attempts_killed : int;
  spilled_bytes : int;
  spill_passes : int;
  oom_kills : int;
  skipped_records : int;
}

type t = {
  jobs : job list;
  lost_s : float;
  replayed_s : float;
  recovered_jobs : int;
  checkpoint_s : float;
  checkpoints_written : int;
  checkpoint_bytes : int;
}

let empty =
  {
    jobs = [];
    lost_s = 0.0;
    replayed_s = 0.0;
    recovered_jobs = 0;
    checkpoint_s = 0.0;
    checkpoints_written = 0;
    checkpoint_bytes = 0;
  }

let append t job = { t with jobs = t.jobs @ [ job ] }
let charge_lost t dt_s = { t with lost_s = t.lost_s +. dt_s }

let charge_replay t ~jobs dt_s =
  {
    t with
    replayed_s = t.replayed_s +. dt_s;
    recovered_jobs = t.recovered_jobs + jobs;
  }

let charge_checkpoint t ~bytes dt_s =
  {
    t with
    checkpoint_s = t.checkpoint_s +. dt_s;
    checkpoints_written = t.checkpoints_written + 1;
    checkpoint_bytes = t.checkpoint_bytes + bytes;
  }

(* Slot demand: every map task and every reduce task of a cycle needs a
   slot, but the phases are sequential, so the cycle's peak concurrent
   need is the larger side. The startup-only degenerate case (no tasks)
   still occupies the scheduler, hence the floor of 1. *)
let job_slots j = max 1 (max j.map_tasks j.reduce_tasks)

let slot_seconds t =
  List.fold_left
    (fun acc j -> acc +. (float_of_int (job_slots j) *. j.est_time_s))
    0.0 t.jobs

let cycles t = List.length t.jobs

let map_only_cycles t =
  List.length (List.filter (fun j -> j.kind = Map_only) t.jobs)

let full_cycles t =
  List.length (List.filter (fun j -> j.kind = Map_reduce) t.jobs)

let sum f t = List.fold_left (fun acc j -> acc + f j) 0 t.jobs
let total_input_bytes = sum (fun j -> j.input_bytes)
let total_shuffle_bytes = sum (fun j -> j.shuffle_bytes)
let total_output_bytes = sum (fun j -> j.output_bytes)
let total_attempts_failed = sum (fun j -> j.attempts_failed)
let total_speculative_launched = sum (fun j -> j.speculative_launched)
let total_attempts_killed = sum (fun j -> j.attempts_killed)
let total_spilled_bytes = sum (fun j -> j.spilled_bytes)
let total_spill_passes = sum (fun j -> j.spill_passes)
let total_oom_kills = sum (fun j -> j.oom_kills)
let total_skipped_records = sum (fun j -> j.skipped_records)
let lost_s t = t.lost_s
let replayed_s t = t.replayed_s
let recovered_jobs t = t.recovered_jobs
let checkpoint_s t = t.checkpoint_s
let checkpoints_written t = t.checkpoints_written
let checkpoint_bytes t = t.checkpoint_bytes

let total_breakdown t =
  List.fold_left (fun acc j -> breakdown_add acc j.breakdown) breakdown_zero
    t.jobs

(* The recovery terms default to 0.0, and [x +. 0.0] is bit-identical
   to [x] for the non-negative finite times the model produces — so with
   checkpointing off this is exactly the pre-recovery total. *)
let est_time_s t =
  List.fold_left (fun acc j -> acc +. j.est_time_s) 0.0 t.jobs
  +. t.lost_s +. t.replayed_s +. t.checkpoint_s

let kind_string = function Map_reduce -> "map-reduce" | Map_only -> "map-only"

let breakdown_to_json b =
  Json.Obj
    [
      ("startup_s", Json.Float b.startup_s);
      ("map_s", Json.Float b.map_s);
      ("shuffle_s", Json.Float b.shuffle_s);
      ("sort_s", Json.Float b.sort_s);
      ("reduce_s", Json.Float b.reduce_s);
      ("spill_s", Json.Float b.spill_s);
    ]

let job_to_json j =
  Json.Obj
    [
      ("name", Json.String j.name);
      ("kind", Json.String (kind_string j.kind));
      ("input_records", Json.Int j.input_records);
      ("input_bytes", Json.Int j.input_bytes);
      ("shuffle_records", Json.Int j.shuffle_records);
      ("shuffle_bytes", Json.Int j.shuffle_bytes);
      ("output_records", Json.Int j.output_records);
      ("output_bytes", Json.Int j.output_bytes);
      ("map_tasks", Json.Int j.map_tasks);
      ("reduce_tasks", Json.Int j.reduce_tasks);
      ("est_time_s", Json.Float j.est_time_s);
      ("phases", breakdown_to_json j.breakdown);
      ("combine_input_records", Json.Int j.combine_input_records);
      ("combine_output_records", Json.Int j.combine_output_records);
      ("reduce_groups", Json.Int j.reduce_groups);
      ("attempts_failed", Json.Int j.attempts_failed);
      ("speculative_launched", Json.Int j.speculative_launched);
      ("attempts_killed", Json.Int j.attempts_killed);
      ("spilled_bytes", Json.Int j.spilled_bytes);
      ("spill_passes", Json.Int j.spill_passes);
      ("oom_kills", Json.Int j.oom_kills);
      ("skipped_records", Json.Int j.skipped_records);
    ]

let to_json t =
  Json.Obj
    [
      ("cycles", Json.Int (cycles t));
      ("full_cycles", Json.Int (full_cycles t));
      ("map_only_cycles", Json.Int (map_only_cycles t));
      ("input_bytes", Json.Int (total_input_bytes t));
      ("shuffle_bytes", Json.Int (total_shuffle_bytes t));
      ("output_bytes", Json.Int (total_output_bytes t));
      ("est_time_s", Json.Float (est_time_s t));
      ("lost_s", Json.Float t.lost_s);
      ("attempts_failed", Json.Int (total_attempts_failed t));
      ("speculative_launched", Json.Int (total_speculative_launched t));
      ("attempts_killed", Json.Int (total_attempts_killed t));
      ("spilled_bytes", Json.Int (total_spilled_bytes t));
      ("spill_passes", Json.Int (total_spill_passes t));
      ("oom_kills", Json.Int (total_oom_kills t));
      ("skipped_records", Json.Int (total_skipped_records t));
      ("replayed_s", Json.Float t.replayed_s);
      ("recovered_jobs", Json.Int t.recovered_jobs);
      ("checkpoint_s", Json.Float t.checkpoint_s);
      ("checkpoints_written", Json.Int t.checkpoints_written);
      ("checkpoint_bytes", Json.Int t.checkpoint_bytes);
      ("phases", breakdown_to_json (total_breakdown t));
      ("jobs", Json.List (List.map job_to_json t.jobs));
    ]

let pp_kind ppf = function
  | Map_reduce -> Fmt.string ppf "MR"
  | Map_only -> Fmt.string ppf "M "

let pp_breakdown ppf b =
  Fmt.pf ppf "startup=%.1fs map=%.1fs shuffle=%.1fs sort=%.1fs reduce=%.1fs"
    b.startup_s b.map_s b.shuffle_s b.sort_s b.reduce_s;
  if b.spill_s > 0.0 then Fmt.pf ppf " spill=%.1fs" b.spill_s

let pp_job ppf j =
  Fmt.pf ppf "%a %-28s in=%8dB shuf=%8dB out=%8dB maps=%2d reds=%2d t=%6.1fs"
    pp_kind j.kind j.name j.input_bytes j.shuffle_bytes j.output_bytes
    j.map_tasks j.reduce_tasks j.est_time_s

let pp ppf t =
  Fmt.pf ppf "@[<v>%a@]" (Fmt.list ~sep:Fmt.cut pp_job) t.jobs

let pp_summary ppf t =
  Fmt.pf ppf "%d cycles (%d full MR, %d map-only), %d B shuffled, %.1f s"
    (cycles t) (full_cycles t) (map_only_cycles t) (total_shuffle_bytes t)
    (est_time_s t)
