(** Minimal JSON values and serialization.

    Just enough to emit machine-consumable output (Chrome trace-event
    files, [--json] CLI output) without an external dependency. Output is
    compact, UTF-8 passthrough, with the mandatory escapes applied. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float  (** must be finite; NaN/infinity raise on output *)
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_buffer : Buffer.t -> t -> unit

(** [to_string v] is the compact serialization of [v].
    @raise Invalid_argument on non-finite floats. *)
val to_string : t -> string

(** [of_string s] parses one JSON document. Numbers without a fraction
    or exponent become [Int], others [Float]; [\uXXXX] escapes decode
    to UTF-8 with surrogate pairs combined (a lone surrogate decodes to
    U+FFFD). Round-trips every value {!to_string} produces. *)
val of_string : string -> (t, string) result

(** [member key v] is the field [key] of an object ([None] for missing
    keys and non-objects). *)
val member : string -> t -> t option
