type t = (string, int ref) Hashtbl.t

let create () : t = Hashtbl.create 32

let add t name n =
  match Hashtbl.find_opt t name with
  | Some cell -> cell := !cell + n
  | None -> Hashtbl.add t name (ref n)

let get t name =
  match Hashtbl.find_opt t name with Some cell -> !cell | None -> 0

let to_alist t =
  Hashtbl.fold (fun name cell acc -> (name, !cell) :: acc) t []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let to_json t =
  Json.Obj (List.map (fun (name, v) -> (name, Json.Int v)) (to_alist t))

let pp ppf t =
  Fmt.pf ppf "@[<v>%a@]"
    (Fmt.list ~sep:Fmt.cut (fun ppf (name, v) -> Fmt.pf ppf "%s=%d" name v))
    (to_alist t)
