let triple_to_line = Triple.to_ntriples

type located_error = { l_line : int; l_col : int; l_reason : string }

let string_of_error e =
  Printf.sprintf "line %d: col %d: %s" e.l_line e.l_col e.l_reason

let pp_error ppf e =
  Fmt.pf ppf "line %d: col %d: %s" e.l_line e.l_col e.l_reason

(* A small cursor-based scanner over one line. Scan errors carry the
   1-based column; the line number is attached by the caller. *)
type cursor = { line : string; mutable pos : int }

let peek c = if c.pos < String.length c.line then Some c.line.[c.pos] else None

let skip_ws c =
  while
    c.pos < String.length c.line
    && (c.line.[c.pos] = ' ' || c.line.[c.pos] = '\t')
  do
    c.pos <- c.pos + 1
  done

let error c msg = Error (c.pos + 1, msg)

let scan_iri c =
  (* Caller has consumed nothing; current char is '<'. *)
  c.pos <- c.pos + 1;
  let start = c.pos in
  match String.index_from_opt c.line start '>' with
  | None -> error c "unterminated IRI"
  | Some close ->
    let iri = String.sub c.line start (close - start) in
    c.pos <- close + 1;
    Ok (Term.iri iri)

let scan_bnode c =
  (* Current chars are '_:'. *)
  c.pos <- c.pos + 2;
  let start = c.pos in
  let is_label_char ch =
    (ch >= 'a' && ch <= 'z')
    || (ch >= 'A' && ch <= 'Z')
    || (ch >= '0' && ch <= '9')
    || ch = '_' || ch = '-'
  in
  while c.pos < String.length c.line && is_label_char c.line.[c.pos] do
    c.pos <- c.pos + 1
  done;
  if c.pos = start then error c "empty blank node label"
  else Ok (Term.bnode (String.sub c.line start (c.pos - start)))

let unescape s =
  let buf = Buffer.create (String.length s) in
  let rec go i =
    if i >= String.length s then Buffer.contents buf
    else if s.[i] = '\\' && i + 1 < String.length s then begin
      (match s.[i + 1] with
      | 'n' -> Buffer.add_char buf '\n'
      | 'r' -> Buffer.add_char buf '\r'
      | 't' -> Buffer.add_char buf '\t'
      | '"' -> Buffer.add_char buf '"'
      | '\\' -> Buffer.add_char buf '\\'
      | other ->
        Buffer.add_char buf '\\';
        Buffer.add_char buf other);
      go (i + 2)
    end
    else begin
      Buffer.add_char buf s.[i];
      go (i + 1)
    end
  in
  go 0

let datatype_of_iri = Term.datatype_of_iri

let scan_literal c =
  (* Current char is '"'. Scan to the closing unescaped quote. *)
  c.pos <- c.pos + 1;
  let start = c.pos in
  let rec find i =
    if i >= String.length c.line then None
    else if c.line.[i] = '\\' then find (i + 2)
    else if c.line.[i] = '"' then Some i
    else find (i + 1)
  in
  match find start with
  | None -> error c "unterminated literal"
  | Some close -> (
    let lex = unescape (String.sub c.line start (close - start)) in
    c.pos <- close + 1;
    match peek c with
    | Some '^' when c.pos + 1 < String.length c.line && c.line.[c.pos + 1] = '^'
      -> (
      c.pos <- c.pos + 2;
      match peek c with
      | Some '<' -> (
        match scan_iri c with
        | Error _ as e -> e
        | Ok dt_term -> (
          let dt_iri = Term.lexical dt_term in
          match datatype_of_iri dt_iri with
          | Some datatype -> Ok (Term.Literal { lex; datatype })
          | None -> Ok (Term.Literal { lex; datatype = Term.Dstring })))
      | _ -> error c "expected datatype IRI after ^^")
    | Some '@' ->
      (* Language tag: keep the lexical form, drop the tag. *)
      let rec skip i =
        if
          i < String.length c.line
          && c.line.[i] <> ' ' && c.line.[i] <> '\t'
        then skip (i + 1)
        else i
      in
      c.pos <- skip (c.pos + 1);
      Ok (Term.str lex)
    | _ -> Ok (Term.str lex))

let scan_term c =
  skip_ws c;
  match peek c with
  | Some '<' -> scan_iri c
  | Some '"' -> scan_literal c
  | Some '_' -> scan_bnode c
  | Some ch -> error c (Printf.sprintf "unexpected character %C" ch)
  | None -> error c "unexpected end of line"

let parse_line_located ~line:l_line line =
  let trimmed = String.trim line in
  if trimmed = "" || trimmed.[0] = '#' then Ok None
  else
    let located = function
      | Ok _ as ok -> ok
      | Error (l_col, l_reason) -> Error { l_line; l_col; l_reason }
    in
    let c = { line = trimmed; pos = 0 } in
    match located (scan_term c) with
    | Error e -> Error e
    | Ok s -> (
      match located (scan_term c) with
      | Error e -> Error e
      | Ok p -> (
        match located (scan_term c) with
        | Error e -> Error e
        | Ok o ->
          skip_ws c;
          (match peek c with
          | Some '.' ->
            c.pos <- c.pos + 1;
            skip_ws c;
            (match peek c with
            | None -> Ok (Some (Triple.make s p o))
            | Some _ -> located (error c "trailing content after '.'"))
          | _ -> located (error c "expected terminating '.'"))))

(* Shim: the historical one-line API reported ["col %d: %s"]. *)
let parse_line line =
  match parse_line_located ~line:1 line with
  | Ok t -> Ok t
  | Error e -> Error (Printf.sprintf "col %d: %s" e.l_col e.l_reason)

type mode = Strict | Skip of int | Quarantine

let pp_mode ppf = function
  | Strict -> Fmt.string ppf "strict"
  | Skip n -> Fmt.pf ppf "skip=%d" n
  | Quarantine -> Fmt.string ppf "quarantine"

let parse_mode s =
  match s with
  | "strict" -> Ok Strict
  | "quarantine" -> Ok Quarantine
  | "skip" -> Ok (Skip 100)
  | _ -> (
    let bad () =
      Error
        (Printf.sprintf
           "--dirty-input: expected strict, skip[=N], or quarantine, got %S" s)
    in
    match String.index_opt s '=' with
    | Some i when String.sub s 0 i = "skip" -> (
      let v = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt v with
      | Some n when n >= 0 -> Ok (Skip n)
      | _ -> bad ())
    | _ -> bad ())

type quarantined = { q_text : string; q_error : located_error }

let pp_quarantined ppf q =
  Fmt.pf ppf "line %d, col %d: %s: %S" q.q_error.l_line q.q_error.l_col
    q.q_error.l_reason q.q_text

type load = { triples : Triple.t list; quarantined : quarantined list }

let budget_of_mode = function
  | Strict -> 0
  | Skip n -> n
  | Quarantine -> max_int

let parse_string_mode mode s =
  let budget = budget_of_mode mode in
  let lines = String.split_on_char '\n' s in
  let rec go n acc quar nquar = function
    | [] -> Ok { triples = List.rev acc; quarantined = List.rev quar }
    | line :: rest -> (
      match parse_line_located ~line:n line with
      | Ok None -> go (n + 1) acc quar nquar rest
      | Ok (Some t) -> go (n + 1) (t :: acc) quar nquar rest
      | Error e ->
        if nquar >= budget then Error e
        else
          go (n + 1) acc
            ({ q_text = String.trim line; q_error = e } :: quar)
            (nquar + 1) rest)
  in
  go 1 [] [] 0 lines

(* Shim: the historical whole-document API reported
   ["line %d: col %d: %s"] as one string. *)
let parse_string s =
  match parse_string_mode Strict s with
  | Ok { triples; _ } -> Ok triples
  | Error e -> Error (string_of_error e)

let write_file path triples =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun t ->
          output_string oc (triple_to_line t);
          output_char oc '\n')
        triples)

let read_file_mode mode path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      let content = really_input_string ic len in
      parse_string_mode mode content)

let read_file path =
  match read_file_mode Strict path with
  | Ok { triples; _ } -> Ok triples
  | Error e -> Error (string_of_error e)
