(** N-Triples serialization and parsing.

    Covers the subset emitted by {!Term.to_ntriples}: IRIs, blank nodes,
    plain strings, and typed literals with the XSD datatypes this library
    produces.

    Real datasets are dirty, so parsing supports three read modes:
    [Strict] (any malformed line fails the load — the historical
    behaviour), [Skip budget] (up to [budget] malformed lines are
    quarantined and the rest of the document loads), and [Quarantine]
    (every malformed line is quarantined). Quarantined lines come back
    with located errors — 1-based line and column — so corrupt records
    can be reported precisely and repaired. *)

val triple_to_line : Triple.t -> string

(** A parse error located at a 1-based line and column. Columns are
    relative to the trimmed line, matching the historical string
    errors. *)
type located_error = { l_line : int; l_col : int; l_reason : string }

(** ["line %d: col %d: %s"] — the exact format the string-returning
    shims ({!parse_string}, {!read_file}) have always reported. *)
val string_of_error : located_error -> string

val pp_error : located_error Fmt.t

(** [parse_line_located ~line s] parses one N-Triples line, tagging any
    error with [line]. Blank lines and [#] comments yield [Ok None]. *)
val parse_line_located :
  line:int -> string -> (Triple.t option, located_error) result

(** [parse_line s] parses one N-Triples line. Blank lines and [#] comments
    yield [Ok None]. Errors are rendered ["col %d: %s"] (shim over
    {!parse_line_located}). *)
val parse_line : string -> (Triple.t option, string) result

(** How to treat malformed lines in a whole-document load. *)
type mode =
  | Strict  (** fail on the first malformed line *)
  | Skip of int  (** quarantine up to this many lines, then fail *)
  | Quarantine  (** quarantine every malformed line *)

(** Parse a CLI [--dirty-input] mode: [strict], [skip] (budget 100),
    [skip=N], or [quarantine]. *)
val parse_mode : string -> (mode, string) result

val pp_mode : mode Fmt.t

(** A malformed line set aside by [Skip]/[Quarantine]: its trimmed text
    and the located parse error. *)
type quarantined = { q_text : string; q_error : located_error }

(** One quarantine-report entry: ["line %d, col %d: %s: %S"]. *)
val pp_quarantined : quarantined Fmt.t

type load = {
  triples : Triple.t list;  (** well-formed lines, in document order *)
  quarantined : quarantined list;  (** malformed lines, in document order *)
}

(** [parse_string_mode mode s] parses an entire N-Triples document under
    [mode]. [Error] carries the first malformed line beyond the mode's
    budget ([Strict] fails on the first, [Skip n] on the [n+1]-th). *)
val parse_string_mode : mode -> string -> (load, located_error) result

(** [parse_string s] parses an entire N-Triples document, stopping at
    the first malformed line (shim: [Strict] with string errors). *)
val parse_string : string -> (Triple.t list, string) result

val write_file : string -> Triple.t list -> unit

val read_file_mode : mode -> string -> (load, located_error) result

val read_file : string -> (Triple.t list, string) result
