(* Disease-specific drug discovery scenario over the Chem2Bio2RDF-like
   dataset (the paper's §5 case study): find compounds sharing targets
   with a known drug (G5) and compare the per-compound-per-gene assay
   counts with the per-compound totals (MG6).

     dune exec examples/drug_discovery.exe *)

module Engine = Rapida_core.Engine
module Plan_util = Rapida_core.Plan_util
module Catalog = Rapida_queries.Catalog
module Table = Rapida_relational.Table

let run_and_show session entry =
  Fmt.pr "@.-- %s: %s@." entry.Catalog.id entry.Catalog.description;
  let ctx = Plan_util.context Plan_util.default_options in
  match Engine.execute session ctx (Catalog.parse entry) with
  | Error e -> prerr_endline ("error: " ^ Engine.error_message e)
  | Ok { table; stats; _ } ->
    let preview =
      { table with
        Table.rows = List.filteri (fun i _ -> i < 8) table.Table.rows }
    in
    Fmt.pr "%a@.(%d rows; %a)@." Table.pp preview (Table.cardinality table)
      Rapida_mapred.Stats.pp_summary stats

let () =
  let graph = Rapida_datagen.Chem2bio.(generate (config ~compounds:120 ())) in
  Fmt.pr "generated chemogenomics dataset: %d triples@."
    (Rapida_rdf.Graph.size graph);
  (* One prepared session serves the whole sequence: the triplegroup
     store is built once, on the first execute. *)
  let session =
    Engine.prepare Engine.Rapid_analytics (Engine.input_of_graph graph)
  in
  (* Single-grouping query with a constant-object constraint and a long
     join chain: assays -> genes -> interactions -> the known drug. *)
  run_and_show session (Catalog.find_exn "G5");
  (* Pathway-restricted activity with a FILTER that the NTGA engines push
     into the triplegroup scan. *)
  run_and_show session (Catalog.find_exn "G6");
  (* Multi-grouping comparison: per compound-gene vs per compound. *)
  run_and_show session (Catalog.find_exn "MG6");
  (* Show how the optimizer explains the MG6 rewriting. *)
  Fmt.pr "@.%s@."
    (Rapida_core.Rapid_analytics.plan_description
       (Catalog.parse (Catalog.find_exn "MG6")))
