(* OLAP-style ROLLUP and CUBE over an RDF graph pattern — the "more
   complex OLAP queries" extension the paper's conclusion points to.

   One graph pattern (offers with product features and vendor countries)
   is aggregated under every grouping level at once; because the expanded
   subqueries trivially overlap, RAPIDAnalytics answers the whole rollup
   with a single composite pattern and one parallel Agg-Join cycle.

     dune exec examples/olap_cube.exe *)

module Engine = Rapida_core.Engine
module Plan_util = Rapida_core.Plan_util
module Grouping_sets = Rapida_core.Grouping_sets
module Analytical = Rapida_sparql.Analytical
module To_sparql = Rapida_sparql.To_sparql
module Table = Rapida_relational.Table
module Stats = Rapida_mapred.Stats

let base =
  {|SELECT ?f ?c (COUNT(?pr) AS ?cnt) (SUM(?pr) AS ?rev)
  { ?p a ProductType1 . ?p productFeature ?f .
    ?off product ?p . ?off price ?pr . ?off vendor ?v .
    ?v country ?c . }
  GROUP BY ?f ?c|}

let run_ra session q =
  let ctx = Plan_util.context Plan_util.default_options in
  match Engine.execute session ctx q with
  | Ok out -> out
  | Error e -> failwith (Engine.error_message e)

let () =
  let graph = Rapida_datagen.Bsbm.(generate (config ~products:200 ())) in
  Fmt.pr "dataset: %d triples@." (Rapida_rdf.Graph.size graph);
  let session =
    Engine.prepare Engine.Rapid_analytics (Engine.input_of_graph graph)
  in
  let sq = List.hd (Analytical.parse_exn base).Analytical.subqueries in
  let rollup =
    match Grouping_sets.rollup sq ~dims:[ "f"; "c" ] with
    | Ok q -> q
    | Error e -> failwith e
  in
  Fmt.pr "@.the ROLLUP(?f, ?c) expansion as SPARQL:@.%s@."
    (To_sparql.analytical rollup);
  Fmt.pr "@.predicted workflow lengths:@.%s@."
    (Rapida_core.Plan_summary.describe rollup);
  let { Engine.table; stats; _ } = run_ra session rollup in
  Fmt.pr
    "@.rollup computed in %a@.(all three grouping levels share one composite \
     pattern and one Agg-Join cycle)@."
    Stats.pp_summary stats;
  let preview =
    { table with Table.rows = List.filteri (fun i _ -> i < 6) table.Table.rows }
  in
  Fmt.pr "@.sample rows (%d total):@.%a@." (Table.cardinality table) Table.pp
    preview;
  (* CUBE over the same dimensions: every subset of {f, c}. *)
  let cube =
    match Grouping_sets.cube sq ~dims:[ "f"; "c" ] with
    | Ok q -> q
    | Error e -> failwith e
  in
  let cube_out = run_ra session cube in
  Fmt.pr "@.CUBE(?f, ?c): %d result rows in %a@."
    (Table.cardinality cube_out.Engine.table)
    Stats.pp_summary cube_out.Engine.stats;
  (* Cross-check against the reference evaluator. *)
  let expected = Rapida_ref.Ref_engine.run graph rollup in
  if Rapida_relational.Relops.same_results expected table then
    print_endline "rollup verified against the reference evaluator"
  else print_endline "MISMATCH against the reference evaluator"
