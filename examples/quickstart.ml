(* Quickstart: build a tiny RDF graph by hand, write an analytical query
   with two related groupings, and run it through RAPIDAnalytics.

     dune exec examples/quickstart.exe *)

module Term = Rapida_rdf.Term
module Triple = Rapida_rdf.Triple
module Graph = Rapida_rdf.Graph
module Namespace = Rapida_rdf.Namespace
module Engine = Rapida_core.Engine
module Plan_util = Rapida_core.Plan_util
module Table = Rapida_relational.Table

let ns = Namespace.bench
let iri name = Term.iri (ns ^ name)

(* A miniature product dataset: two products of the same type, three
   offers with prices, one product carries two features. *)
let graph =
  let t s p o = Triple.make s p o in
  Graph.of_list
    [
      t (iri "p1") Namespace.rdf_type (iri "Gadget");
      t (iri "p1") (iri "label") (Term.str "widget one");
      t (iri "p1") (iri "productFeature") (iri "waterproof");
      t (iri "p1") (iri "productFeature") (iri "wireless");
      t (iri "p2") Namespace.rdf_type (iri "Gadget");
      t (iri "p2") (iri "label") (Term.str "widget two");
      t (iri "p2") (iri "productFeature") (iri "wireless");
      t (iri "o1") (iri "product") (iri "p1");
      t (iri "o1") (iri "price") (Term.decimal 100.0);
      t (iri "o2") (iri "product") (iri "p1");
      t (iri "o2") (iri "price") (Term.decimal 140.0);
      t (iri "o3") (iri "product") (iri "p2");
      t (iri "o3") (iri "price") (Term.decimal 60.0);
    ]

(* Average price per feature versus the average across all features —
   the same shape as the paper's running example AQ1. Both groupings are
   defined over overlapping graph patterns, so RAPIDAnalytics evaluates
   them on one composite pattern with a single parallel Agg-Join. *)
let query =
  {|SELECT ?f ?cntF ?sumF ?cntT ?sumT {
  { SELECT ?f (COUNT(?pr2) AS ?cntF) (SUM(?pr2) AS ?sumF)
    { ?p2 a Gadget . ?p2 label ?l2 . ?p2 productFeature ?f .
      ?off2 product ?p2 . ?off2 price ?pr2 . }
    GROUP BY ?f }
  { SELECT (COUNT(?pr) AS ?cntT) (SUM(?pr) AS ?sumT)
    { ?p1 a Gadget . ?p1 label ?l1 .
      ?off1 product ?p1 . ?off1 price ?pr . } }
}|}

let () =
  let input = Engine.input_of_graph graph in
  (* Show the rewriting the optimizer applies. *)
  let q = Rapida_sparql.Analytical.parse_exn query in
  print_endline (Rapida_core.Rapid_analytics.plan_description q);
  print_newline ();
  let session = Engine.prepare Engine.Rapid_analytics input in
  let ctx = Plan_util.context Plan_util.default_options in
  match Engine.execute_sparql session ctx query with
  | Error e -> prerr_endline ("error: " ^ Engine.error_message e)
  | Ok { table; stats; _ } ->
    Fmt.pr "%a@." Table.pp table;
    Fmt.pr "executed in %a@." Rapida_mapred.Stats.pp_summary stats
