(* E-commerce business-intelligence scenario (the BSBM BI use case that
   motivates the paper's running example): generate a product/offer/vendor
   dataset and compare, across all four engines, the price-per-feature vs
   price-per-country analyses MG1 and MG3.

     dune exec examples/ecommerce_analytics.exe *)

module Engine = Rapida_core.Engine
module Plan_util = Rapida_core.Plan_util
module Catalog = Rapida_queries.Catalog
module Experiment = Rapida_harness.Experiment
module Report = Rapida_harness.Report

let () =
  let graph = Rapida_datagen.Bsbm.(generate (config ~products:300 ())) in
  Fmt.pr "generated BSBM-like dataset: %d triples@."
    (Rapida_rdf.Graph.size graph);
  let input = Engine.input_of_graph graph in
  let options =
    Plan_util.make
      ~cluster:(Rapida_mapred.Cluster.scaled_down ~factor:1.0e5)
      ~map_join_threshold:(24 * 1024) ()
  in
  let runs =
    Experiment.run_queries options ~label:"bsbm-example" input
      [ Catalog.find_exn "MG1"; Catalog.find_exn "MG3" ]
  in
  Fmt.pr "%a"
    (Report.pp_comparison
       ~title:"Average price per feature / per country-feature"
       ~engines:Engine.all_kinds)
    runs;
  Fmt.pr "%a"
    (Report.pp_cycles ~title:"MapReduce cycles" ~engines:Engine.all_kinds)
    runs;
  Fmt.pr "%a" Report.pp_verification runs;
  (* Peek at the actual answer: top rows of the MG1 result. *)
  match
    Engine.execute
      (Engine.prepare Engine.Rapid_analytics input)
      (Plan_util.context options)
      (Catalog.parse (Catalog.find_exn "MG1"))
  with
  | Error e -> prerr_endline (Engine.error_message e)
  | Ok { table; _ } ->
    let module Table = Rapida_relational.Table in
    let preview = { table with Table.rows = List.filteri (fun i _ -> i < 5) table.Table.rows } in
    Fmt.pr "@.sample of MG1 result (%d rows total):@.%a@."
      (Table.cardinality table) Table.pp preview
