(* Research-vs-disease-burden analysis, modeled on the ReDD-Observatory
   study the paper's introduction describes: for each (country, disease)
   pair, compare the number of clinical trials against the number of
   deaths, combining a ClinicalTrials-like source with a Global Health
   Observatory-like mortality source.

     dune exec examples/clinical_trials.exe *)

module Term = Rapida_rdf.Term
module Triple = Rapida_rdf.Triple
module Graph = Rapida_rdf.Graph
module Namespace = Rapida_rdf.Namespace
module Engine = Rapida_core.Engine
module Plan_util = Rapida_core.Plan_util
module Table = Rapida_relational.Table
module Prng = Rapida_datagen.Prng

let ns = Namespace.bench
let iri name = Term.iri (ns ^ name)

let diseases = [| "Tuberculosis"; "HIV"; "Malaria"; "Diabetes" |]
let countries = [| "KE"; "IN"; "BR"; "US"; "FR"; "ZA" |]

(* Trials: each trial studies a disease in a country and enrolls some
   number of patients. Mortality records: deaths per (country, disease)
   reporting site. The two descriptions overlap on their star structure,
   so the optimizer evaluates them as one composite pattern. *)
let graph =
  let rng = Prng.create ~seed:7 in
  let t s p o = Triple.make s p o in
  let triples = ref [] in
  let add tr = triples := tr :: !triples in
  for i = 1 to 300 do
    let trial = iri (Printf.sprintf "Trial%d" i) in
    add (t trial Namespace.rdf_type (iri "ClinicalTrial"));
    add (t trial (iri "condition") (Term.str diseases.(Prng.zipf rng 4 ~skew:0.8)));
    add (t trial (iri "country") (Term.str countries.(Prng.int rng 6)));
    add (t trial (iri "enrollment") (Term.int (20 + Prng.int rng 500)))
  done;
  for i = 1 to 200 do
    let record = iri (Printf.sprintf "Mortality%d" i) in
    add (t record Namespace.rdf_type (iri "MortalityRecord"));
    add (t record (iri "condition") (Term.str diseases.(Prng.zipf rng 4 ~skew:0.4)));
    add (t record (iri "country") (Term.str countries.(Prng.int rng 6)));
    add (t record (iri "deaths") (Term.int (100 + Prng.int rng 20000)))
  done;
  Graph.of_list (List.rev !triples)

let query =
  {|SELECT ?c ?d ?trials ?patients ?deaths {
  { SELECT ?c ?d (COUNT(?e) AS ?trials) (SUM(?e) AS ?patients)
    { ?t a ClinicalTrial . ?t condition ?d . ?t country ?c .
      ?t enrollment ?e . }
    GROUP BY ?c ?d }
  { SELECT ?c ?d (SUM(?m) AS ?deaths)
    { ?r a MortalityRecord . ?r condition ?d . ?r country ?c .
      ?r deaths ?m . }
    GROUP BY ?c ?d }
}|}

let () =
  Fmt.pr "clinical-trials dataset: %d triples@." (Graph.size graph);
  let input = Engine.input_of_graph graph in
  let q = Rapida_sparql.Analytical.parse_exn query in
  (* This pair of patterns does NOT overlap (different rdf:type objects),
     so the optimizer reports why and falls back to the naive NTGA plan —
     exactly the scoping rule of Def. 3.1. *)
  print_endline (Rapida_core.Rapid_analytics.plan_description q);
  let session = Engine.prepare Engine.Rapid_analytics input in
  let ctx = Plan_util.context Plan_util.default_options in
  match Engine.execute session ctx q with
  | Error e -> prerr_endline ("error: " ^ Engine.error_message e)
  | Ok { table; stats; _ } ->
    let sorted = Rapida_relational.Relops.canonicalize table in
    Fmt.pr "%a@." Table.pp sorted;
    Fmt.pr "executed in %a@." Rapida_mapred.Stats.pp_summary stats;
    (* Cross-check against the reference evaluator. *)
    let expected = Rapida_ref.Ref_engine.run graph q in
    if Rapida_relational.Relops.same_results expected table then
      print_endline "verified against the reference evaluator"
    else print_endline "MISMATCH against the reference evaluator"
