(* Command-line interface:

     rapida gen     - generate a synthetic benchmark dataset (N-Triples)
     rapida query   - run a SPARQL analytical query on a dataset
     rapida serve   - drive a query workload through the MQO query server
     rapida lint    - static analysis: AST lint + plan verification
     rapida analyze - static cardinality/cost analysis from a statistics catalog
     rapida explain - show the overlap analysis and composite rewriting
     rapida catalog - list the paper's query workload, print query text
     rapida stats   - dataset statistics (triples, partitions) *)

module Engine = Rapida_core.Engine
module Plan_util = Rapida_core.Plan_util
module Diagnostic = Rapida_analysis.Diagnostic
module Ast_lint = Rapida_analysis.Ast_lint
module Plan_verify = Rapida_analysis.Plan_verify
module Stats_catalog = Rapida_analysis.Stats_catalog
module Card_analysis = Rapida_analysis.Card_analysis
module Rules = Rapida_analysis.Rules
module Catalog = Rapida_queries.Catalog
module Table = Rapida_relational.Table
module Relops = Rapida_relational.Relops
module Stats = Rapida_mapred.Stats
module Exec_ctx = Rapida_mapred.Exec_ctx
module Metrics = Rapida_mapred.Metrics
module Trace = Rapida_mapred.Trace
module Json = Rapida_mapred.Json
module Fault_injector = Rapida_mapred.Fault_injector
module Memory = Rapida_mapred.Memory
module Checkpoint = Rapida_mapred.Checkpoint
module Cluster = Rapida_mapred.Cluster
module Ntriples = Rapida_rdf.Ntriples
module Graph = Rapida_rdf.Graph
module Rterm = Rapida_rdf.Term
module Scheduler = Rapida_mapred.Scheduler
module Server = Rapida_server.Server
module Workload = Rapida_server.Workload
module Planner = Rapida_planner.Planner
module Cost_model = Rapida_planner.Cost_model
module Plan_cache = Rapida_planner.Plan_cache
module Card = Rapida_analysis.Interval.Card

open Cmdliner

(* --- shared helpers ----------------------------------------------------- *)

(* Exit codes: 2 for usage/input errors (unreadable or unparsable query,
   bad flag values, unknown catalog id), 1 for runtime failures
   (verification mismatch, aborted workflow). Both print a one-line
   diagnostic on stderr — never a backtrace. *)
let die_usage msg =
  prerr_endline ("error: " ^ msg);
  exit 2

let die_runtime msg =
  prerr_endline ("error: " ^ msg);
  exit 1

let setup_logs verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (if verbose then Some Logs.Debug else Some Logs.Warning)

let verbose_arg =
  Arg.(value & flag
       & info [ "v"; "verbose" ] ~doc:"Log every simulated MapReduce job.")

(* Quarantined lines go to stderr so piped results stay clean. *)
let load_graph ?(mode = Ntriples.Strict) path =
  match Ntriples.read_file_mode mode path with
  | Ok { Ntriples.triples; quarantined } ->
    (match quarantined with
    | [] -> ()
    | qs ->
      Fmt.epr "dirty input: quarantined %d malformed line(s) in %s@."
        (List.length qs) path;
      List.iter (fun q -> Fmt.epr "  %a@." Ntriples.pp_quarantined q) qs);
    Ok (Graph.of_list triples)
  | Error e ->
    Error (Printf.sprintf "%s: %s" path (Ntriples.string_of_error e))

let read_file path =
  match open_in path with
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
    |> Result.ok
  | exception Sys_error msg -> Error (Printf.sprintf "cannot read %s" msg)

let print_table t =
  let widths =
    List.mapi
      (fun i col ->
        List.fold_left
          (fun w row ->
            let len =
              match row.(i) with
              | Some v -> String.length (Rterm.lexical v)
              | None -> 4
            in
            max w len)
          (String.length col) t.Table.rows)
      t.Table.schema
  in
  let pad s w = s ^ String.make (max 0 (w - String.length s)) ' ' in
  print_string
    (String.concat "  " (List.map2 pad t.Table.schema widths));
  print_newline ();
  List.iter
    (fun row ->
      let cells =
        List.mapi
          (fun i w ->
            let s =
              match row.(i) with
              | Some v -> Rterm.lexical v
              | None -> "NULL"
            in
            pad s w)
          widths
      in
      print_string (String.concat "  " cells);
      print_newline ())
    t.Table.rows

let table_json t =
  Json.Obj
    [
      ("schema", Json.List (List.map (fun c -> Json.String c) t.Table.schema));
      ( "rows",
        Json.List
          (List.map
             (fun row ->
               Json.List
                 (Array.to_list
                    (Array.map
                       (function
                         | Some v -> Json.String (Rterm.lexical v)
                         | None -> Json.Null)
                       row)))
             t.Table.rows) );
    ]

(* --- gen ---------------------------------------------------------------- *)

let dataset_arg =
  let parse s =
    match String.lowercase_ascii s with
    | "bsbm" -> Ok `Bsbm
    | "chem2bio" | "chem" -> Ok `Chem
    | "pubmed" -> Ok `Pubmed
    | _ -> Error (`Msg "expected bsbm, chem2bio, or pubmed")
  in
  let print ppf = function
    | `Bsbm -> Fmt.string ppf "bsbm"
    | `Chem -> Fmt.string ppf "chem2bio"
    | `Pubmed -> Fmt.string ppf "pubmed"
  in
  Arg.conv (parse, print)

let gen_cmd =
  let dataset =
    Arg.(required & opt (some dataset_arg) None
         & info [ "d"; "dataset" ] ~doc:"Dataset family: bsbm, chem2bio, pubmed.")
  in
  let scale =
    Arg.(value & opt int 100
         & info [ "n"; "scale" ]
             ~doc:"Entity scale (products / compounds / publications).")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"PRNG seed.") in
  let output =
    Arg.(required & opt (some string) None
         & info [ "o"; "output" ] ~doc:"Output N-Triples file.")
  in
  let run dataset scale seed output =
    let graph =
      match dataset with
      | `Bsbm -> Rapida_datagen.Bsbm.(generate (config ~seed ~products:scale ()))
      | `Chem ->
        Rapida_datagen.Chem2bio.(generate (config ~seed ~compounds:scale ()))
      | `Pubmed ->
        Rapida_datagen.Pubmed.(generate (config ~seed ~publications:scale ()))
    in
    Rapida_rdf.Ntriples.write_file output (Graph.triples graph);
    Printf.printf "wrote %d triples to %s\n" (Graph.size graph) output
  in
  Cmd.v
    (Cmd.info "gen" ~doc:"Generate a synthetic benchmark dataset")
    Term.(const run $ dataset $ scale $ seed $ output)

(* --- shared optimizer flags --------------------------------------------- *)

let opt_policy_arg =
  let parse s =
    match Cost_model.policy_of_string s with
    | Some p -> Ok p
    | None -> Error (`Msg "expected mid, worst-case, or minimax-regret")
  in
  let policy_conv =
    Arg.conv (parse, fun ppf p -> Fmt.string ppf (Cost_model.policy_name p))
  in
  Arg.(value & opt policy_conv Cost_model.Worst_case
       & info [ "opt-policy" ] ~docv:"POLICY"
           ~doc:"Robustness policy for --optimize: mid (minimize the \
                 mid-point cost estimate), worst-case (default: minimize \
                 the interval's upper-bound cost), or minimax-regret \
                 (minimize the maximum regret across the low/mid/high \
                 cardinality scenarios).")

let optimize_arg =
  Arg.(value & flag
       & info [ "optimize" ]
           ~doc:"Enable the cost-based planner: enumerate star-join orders \
                 per subquery (and for the composite pattern), costed in \
                 the MR cost model over the static analyzer's cardinality \
                 intervals, and execute the selected verified orders. Off \
                 by default; without this flag execution is byte-identical \
                 to the heuristic planner.")

(* --- query -------------------------------------------------------------- *)

let engine_arg =
  let parse s =
    match Engine.kind_of_string s with
    | Some k -> Ok k
    | None -> Error (`Msg "expected hive-naive, hive-mqo, rapid-plus, or rapid-analytics")
  in
  Arg.conv (parse, fun ppf k -> Fmt.string ppf (Engine.kind_name k))

let query_source_args f =
  let data =
    Arg.(required & opt (some string) None
         & info [ "d"; "data" ] ~doc:"Dataset file (N-Triples).")
  in
  let query_file =
    Arg.(value & opt (some string) None
         & info [ "q"; "query" ] ~doc:"SPARQL query file.")
  in
  let catalog_id =
    Arg.(value & opt (some string) None
         & info [ "c"; "catalog" ] ~doc:"Catalog query id (e.g. MG1).")
  in
  Term.(const f $ data $ query_file $ catalog_id)

let query_text query_file catalog_id =
  match query_file, catalog_id with
  | Some path, None -> read_file path
  | None, Some id -> (
    match Catalog.find id with
    | Some entry -> Ok entry.Catalog.sparql
    | None -> Error (Printf.sprintf "unknown catalog query %s" id))
  | _ -> Error "provide exactly one of --query or --catalog"

let query_cmd =
  let engine =
    Arg.(value & opt engine_arg Engine.Rapid_analytics
         & info [ "e"; "engine" ]
             ~doc:"Engine: hive-naive, hive-mqo, rapid-plus, rapid-analytics.")
  in
  let verify =
    Arg.(value & flag
         & info [ "verify" ] ~doc:"Check the result against the reference evaluator.")
  in
  let verify_plans =
    Arg.(value & flag
         & info [ "verify-plans" ]
             ~doc:"Debug mode: re-check the optimizer invariants (composite \
                   cover, role equivalence, n-split arity, Agg-Join keys, \
                   workflow shape) and the result schema after the run. \
                   Verification is out-of-band and leaves the cost model \
                   untouched; a violation fails the run.")
  in
  let show_stats =
    Arg.(value & flag & info [ "stats" ] ~doc:"Print per-job simulator statistics.")
  in
  let trace_file =
    Arg.(value & opt (some string) None
         & info [ "trace" ] ~docv:"FILE"
             ~doc:"Write a Chrome trace-event file (one span per simulated \
                   job phase; open in chrome://tracing or Perfetto).")
  in
  let json =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Print the result table, statistics with per-phase time \
                   breakdown, and counters as JSON.")
  in
  let faults =
    Arg.(value & opt (some string) None
         & info [ "faults" ] ~docv:"SPEC"
             ~doc:"Inject faults into the simulated cluster: comma-separated \
                   key=value pairs over seed, task-fail, straggler, slowdown, \
                   max-attempts, speculation (on|off), job-retries, backoff, \
                   phase (map|reduce|all), poison (per-record bad-record \
                   probability), and skip-max (bad records tolerated per job \
                   by Hadoop-style skip mode), e.g. \
                   seed=7,task-fail=0.05,straggler=0.1. Fault tolerance is \
                   transparent: unless a task exhausts its attempts, results \
                   are identical to a fault-free run and only the simulated \
                   time and counters change.")
  in
  let mem =
    Arg.(value & opt (some string) None
         & info [ "mem" ] ~docv:"SPEC"
             ~doc:"Bound the simulated cluster's per-task memory: \
                   comma-separated key=value pairs over heap, sort-buffer \
                   (sizes in bytes, or with a k/m/g suffix) and \
                   spill-threshold (0-1], e.g. heap=64m,sort-buffer=1m. \
                   Memory pressure prices spill passes, OOM retries, and \
                   map-join fallbacks into the simulated time; results are \
                   byte-identical at every budget.")
  in
  let checkpoint =
    Arg.(value & opt (some string) None
         & info [ "checkpoint" ] ~docv:"SPEC"
             ~doc:"Checkpoint workflow outputs in the simulated cluster: \
                   comma-separated key=value pairs over every=K (checkpoint \
                   every K jobs), adaptive=BYTES (checkpoint once that many \
                   output bytes accumulate; k/m/g suffixes), and \
                   replication=N (HDFS copies per checkpoint, default 3), \
                   e.g. every=1 or adaptive=64m,replication=2. With any \
                   policy active a workflow that exhausts a job's retries \
                   replays only the jobs since the last checkpoint instead \
                   of aborting; checkpoint writes and replays are priced \
                   into the simulated time and results stay byte-identical.")
  in
  let analyze =
    Arg.(value & flag
         & info [ "analyze" ]
             ~doc:"After the run, compare the static cardinality analysis \
                   against reality: build a statistics catalog from the \
                   dataset, annotate the logical plan with cardinality \
                   intervals, and print each plan node's predicted interval \
                   next to its measured cardinality, with the root q-error. \
                   Execution itself is untouched — without this flag the \
                   output is byte-identical.")
  in
  let dirty_input =
    Arg.(value & opt (some string) None
         & info [ "dirty-input" ] ~docv:"MODE"
             ~doc:"How to treat malformed N-Triples lines in the dataset: \
                   strict (default: fail the load), skip[=N] (quarantine up \
                   to N malformed lines, default 100, then fail), or \
                   quarantine (quarantine every malformed line). Quarantined \
                   lines are reported on stderr with line and column.")
  in
  let run (data, query_file, catalog_id) engine verify verify_plans show_stats
      trace_file json faults_spec mem_spec checkpoint_spec analyze optimize
      opt_policy dirty_spec verbose =
    setup_logs verbose;
    let ( let* ) = Result.bind in
    let usage r = Result.map_error (fun msg -> (2, msg)) r in
    let runtime r = Result.map_error (fun msg -> (1, msg)) r in
    match
      let* fault_cfg =
        usage
          (match faults_spec with
          | None -> Ok Fault_injector.default
          | Some spec -> Fault_injector.parse_spec spec)
      in
      let* mem_cfg =
        usage
          (match mem_spec with
          | None -> Ok Memory.default
          | Some spec -> Memory.parse_spec spec)
      in
      let* checkpoint_cfg =
        usage
          (match checkpoint_spec with
          | None -> Ok Checkpoint.default
          | Some spec -> Checkpoint.parse_spec spec)
      in
      let* dirty_mode =
        usage
          (match dirty_spec with
          | None -> Ok Ntriples.Strict
          | Some spec -> Ntriples.parse_mode spec)
      in
      let cluster =
        Cluster.with_memory Plan_util.default_options.Plan_util.cluster mem_cfg
      in
      let options =
        Plan_util.make ~cluster ~faults:fault_cfg ~checkpoint:checkpoint_cfg
          ~verify_plans ~analyze ()
      in
      let* graph = usage (load_graph ~mode:dirty_mode data) in
      let* src = usage (query_text query_file catalog_id) in
      let* query = usage (Rapida_sparql.Analytical.parse src) in
      (* Cost-based planning: enumerate, select, verify, and arm the
         context with the chosen join orders before execution. *)
      let decision =
        if not optimize then None
        else
          let catalog = Stats_catalog.build graph in
          Some (Planner.plan ~policy:opt_policy ~cluster catalog query)
      in
      let options =
        match decision with
        | None -> options
        | Some d -> Planner.apply d options
      in
      let ctx = Plan_util.context options in
      let input = Engine.input_of_graph graph in
      let session = Engine.prepare engine input in
      (* The one place engine errors meet the exit-code convention:
         Parse_error -> 2, runtime failures -> 1. *)
      let* out =
        Result.map_error
          (fun e -> (Engine.error_exit_code e, Engine.error_message e))
          (Engine.execute session ctx query)
      in
      let* () =
        if not verify then Ok ()
        else
          let* expected = runtime (Rapida_ref.Ref_engine.run_sparql graph src) in
          if Relops.same_results expected out.Engine.table then begin
            if not json then
              print_endline
                "verification: result matches the reference evaluator";
            Ok ()
          end
          else Error (1, "verification FAILED: result differs from reference")
      in
      Ok (ctx, out, graph, query, decision)
    with
    | Error (2, msg) -> die_usage msg
    | Error (_, msg) -> die_runtime msg
    | Ok (ctx, { Engine.table; stats; trace }, graph, query, decision) ->
      (* Runtime misestimate defense, single-query flavor: compare the
         measured root cardinality against the predicted interval and
         record the escape. *)
      let escaped =
        match decision with
        | Some d when not (Card.contains d.Planner.d_root (Table.cardinality table)) ->
          Metrics.add (Exec_ctx.metrics ctx) "opt.misestimates" 1;
          true
        | Some _ | None -> false
      in
      (* The Exec_ctx analyze hook: requested via the options record, read
         back off the context after the run. *)
      let measured =
        if not (Exec_ctx.analyze ctx) then None
        else
          let catalog = Stats_catalog.build graph in
          let analysis = Card_analysis.analyze catalog query in
          Some (analysis, Card_analysis.measure graph analysis)
      in
      if verify_plans then
        List.iter
          (fun d -> Fmt.epr "%a@." Diagnostic.pp d)
          (Plan_verify.verify_memory
             ~heap_bytes:
               (Exec_ctx.cluster ctx).Cluster.task_heap_bytes
             ~agj_ht_bytes:
               (Metrics.get (Exec_ctx.metrics ctx) "mem.agj_ht_bytes"));
      (match trace_file with
      | Some path -> (
        match Trace.write_file trace path with
        | () ->
          if not json then
            Printf.printf "wrote trace (%d events) to %s\n"
              (List.length (Trace.events trace))
              path
        | exception Sys_error msg -> die_runtime ("cannot write trace: " ^ msg))
      | None -> ());
      if json then
        print_endline
          (Json.to_string
             (Json.Obj
                ([
                   ("engine", Json.String (Engine.kind_name engine));
                   ("rows", Json.Int (Table.cardinality table));
                   ("table", table_json table);
                   ("stats", Stats.to_json stats);
                   ("counters", Metrics.to_json (Exec_ctx.metrics ctx));
                 ]
                @ (match decision with
                  | None -> []
                  | Some d ->
                    [
                      ( "optimize",
                        match Planner.decision_to_json d with
                        | Json.Obj fields ->
                          Json.Obj
                            (fields @ [ ("misestimate", Json.Bool escaped) ])
                        | other -> other );
                    ])
                @
                match measured with
                | Some (analysis, m) ->
                  let actuals =
                    Json.List
                      (List.map
                         (fun (node, actual) ->
                           Json.Obj
                             [
                               ("id", Json.Int node.Card_analysis.id);
                               ("actual", Json.Int actual);
                             ])
                         (Card_analysis.measured_list m))
                  in
                  [
                    ( "analyze",
                      match Card_analysis.to_json analysis with
                      | Json.Obj fields ->
                        Json.Obj
                          (fields
                          @ [
                              ("actuals", actuals);
                              ( "q_error",
                                Json.Float (Card_analysis.root_q_error m) );
                            ])
                      | other -> other );
                  ]
                | None -> [])))
      else begin
        print_table table;
        Fmt.pr "-- %d rows; %a@." (Table.cardinality table) Stats.pp_summary
          stats;
        (match decision with
        | None -> ()
        | Some d ->
          Fmt.pr "@.cost-based plan:@.%a" Planner.pp_decision d;
          if escaped then
            Fmt.pr
              "optimizer misestimate: measured cardinality %d escaped the \
               predicted interval %a@."
              (Table.cardinality table) Card.pp d.Planner.d_root);
        if show_stats then Fmt.pr "%a@." Stats.pp stats;
        match measured with
        | Some (analysis, m) ->
          Fmt.pr "@.predicted vs actual cardinalities:@.%a@."
            Card_analysis.pp_measured m;
          List.iter
            (fun d -> Fmt.pr "%a@." Diagnostic.pp d)
            analysis.Card_analysis.diagnostics;
          Fmt.pr "root q-error: %.2f@." (Card_analysis.root_q_error m)
        | None -> ()
      end
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Run a SPARQL analytical query on a dataset")
    Term.(const run
          $ query_source_args (fun d q c -> (d, q, c))
          $ engine $ verify $ verify_plans $ show_stats $ trace_file $ json
          $ faults $ mem $ checkpoint $ analyze $ optimize_arg $ opt_policy_arg
          $ dirty_input $ verbose_arg)

(* --- serve -------------------------------------------------------------- *)

let policy_arg =
  let parse s =
    match Scheduler.policy_of_string s with
    | Some p -> Ok p
    | None -> Error (`Msg "expected fifo or fair")
  in
  Arg.conv (parse, fun ppf p -> Fmt.string ppf (Scheduler.policy_name p))

let serve_cmd =
  let data =
    Arg.(required & opt (some string) None
         & info [ "d"; "data" ] ~doc:"Dataset file (N-Triples).")
  in
  let workload_file =
    Arg.(value & opt (some string) None
         & info [ "w"; "workload" ] ~docv:"FILE"
             ~doc:"Workload file: one arrival per line, TIME QUERY [LABEL] \
                   [deadline=SECONDS], where QUERY is a catalog id or \
                   \\@FILE with SPARQL (\\@ paths resolve relative to the \
                   workload file); # starts a comment.")
  in
  let generate =
    Arg.(value & opt (some int) None
         & info [ "generate" ] ~docv:"N"
             ~doc:"Generate N arrivals instead of reading a workload file: \
                   exponential inter-arrival gaps over the BSBM catalog \
                   queries, deterministic in --seed.")
  in
  let seed =
    Arg.(value & opt int 11 & info [ "seed" ] ~doc:"Workload generator seed.")
  in
  let mean_gap =
    Arg.(value & opt float 3.0
         & info [ "mean-gap" ] ~docv:"SECONDS"
             ~doc:"Mean inter-arrival gap for --generate.")
  in
  let engine =
    Arg.(value & opt engine_arg Engine.Rapid_analytics
         & info [ "e"; "engine" ]
             ~doc:"Engine: hive-naive, hive-mqo, rapid-plus, rapid-analytics. \
                   Cross-query sharing applies to the MQO-capable kinds \
                   (hive-mqo, rapid-analytics).")
  in
  let window =
    Arg.(value & opt float 5.0
         & info [ "window" ] ~docv:"SECONDS"
             ~doc:"Admission window: a batch collects arrivals for this many \
                   seconds after its first pending query, then admits them \
                   together. 0 admits each arrival instant alone.")
  in
  let policy =
    Arg.(value & opt policy_arg Scheduler.Fair
         & info [ "policy" ] ~doc:"Cluster scheduler policy: fifo or fair.")
  in
  let no_share =
    Arg.(value & flag
         & info [ "no-share" ]
             ~doc:"Disable cross-query sharing: admitted queries run solo \
                   (isolates the batching and scheduling effects).")
  in
  let detail =
    Arg.(value & flag
         & info [ "detail" ] ~doc:"Print one line per query before the summary.")
  in
  let json =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Print the full server report (per-query latencies, \
                   batches, savings vs back-to-back) as JSON.")
  in
  let faults =
    Arg.(value & opt (some string) None
         & info [ "faults" ] ~docv:"SPEC"
             ~doc:"Fault-injection spec for every simulated workflow (same \
                   syntax as rapida query --faults).")
  in
  let mem =
    Arg.(value & opt (some string) None
         & info [ "mem" ] ~docv:"SPEC"
             ~doc:"Per-task memory budget (same syntax as rapida query --mem).")
  in
  let deadline =
    Arg.(value & opt (some float) None
         & info [ "deadline" ] ~docv:"SECONDS"
             ~doc:"Default per-query SLO: finish within SECONDS of arrival. \
                   Applies to arrivals without their own deadline= in the \
                   workload file; late queries are reported deadline-missed.")
  in
  let queue_cap =
    Arg.(value & opt (some int) None
         & info [ "queue-cap" ] ~docv:"N"
             ~doc:"Admission control: bound in-flight plus newly admitted \
                   queries to N; overflow is shed (typed fate, exit stays 0) \
                   under --shed-policy.")
  in
  let shed_policy =
    let parse s =
      match Server.shed_policy_of_string s with
      | Some p -> Ok p
      | None -> Error (`Msg "expected drop-tail, cost-aware, or deadline-aware")
    in
    let shed_conv =
      Arg.conv (parse, fun ppf p -> Fmt.string ppf (Server.shed_policy_name p))
    in
    Arg.(value & opt shed_conv Server.Drop_tail
         & info [ "shed-policy" ]
             ~doc:"What to shed when the queue is full: drop-tail (latest \
                   arrivals), cost-aware (most expensive first, by the priced \
                   solo plan's slot-seconds), or deadline-aware (keep the \
                   earliest deadlines, and refuse queries whose estimated \
                   completion already misses theirs).")
  in
  let degrade =
    Arg.(value & flag
         & info [ "degrade" ]
             ~doc:"Enable the degradation ladder: under measured pressure \
                   the server steps from full MQO sharing to sharing-off to \
                   broadcast-everything heuristic plans (with sampled result \
                   verification), and back up when pressure clears.")
  in
  let breaker =
    Arg.(value & opt (some int) None
         & info [ "breaker" ] ~docv:"K"
             ~doc:"Circuit breaker: after K consecutive transient \
                   (job-failed) results, shed whole batches until \
                   --breaker-cooldown passes.")
  in
  let breaker_cooldown =
    Arg.(value & opt float 120.0
         & info [ "breaker-cooldown" ] ~docv:"SECONDS"
             ~doc:"How long an open circuit breaker keeps shedding.")
  in
  let plan_cache =
    Arg.(value & opt int 64
         & info [ "plan-cache" ] ~docv:"N"
             ~doc:"With --optimize: plan-cache capacity (LRU entries keyed \
                   by query shape and catalog fingerprint; a hit skips join \
                   enumeration entirely).")
  in
  let opt_defense =
    Arg.(value & opt int 3
         & info [ "opt-defense" ] ~docv:"K"
             ~doc:"With --optimize: trip the optimizer circuit breaker off \
                   for the session after K consecutive misestimate escapes \
                   (each single escape costs one heuristic-planned group).")
  in
  let run data workload_file generate seed mean_gap engine window policy
      no_share detail json faults_spec mem_spec deadline queue_cap shed_policy
      degrade breaker breaker_cooldown optimize opt_policy plan_cache
      opt_defense verbose =
    setup_logs verbose;
    let ( let* ) = Result.bind in
    let usage r = Result.map_error (fun msg -> (2, msg)) r in
    match
      let* fault_cfg =
        usage
          (match faults_spec with
          | None -> Ok Fault_injector.default
          | Some spec -> Fault_injector.parse_spec spec)
      in
      let* mem_cfg =
        usage
          (match mem_spec with
          | None -> Ok Memory.default
          | Some spec -> Memory.parse_spec spec)
      in
      let* () =
        if window < 0.0 || not (Float.is_finite window) then
          Error (2, "window must be a non-negative number of seconds")
        else Ok ()
      in
      let* () =
        match deadline with
        | Some d when d <= 0.0 || not (Float.is_finite d) ->
          Error (2, "--deadline must be a positive number of seconds")
        | Some _ | None -> Ok ()
      in
      let* () =
        match queue_cap with
        | Some c when c <= 0 -> Error (2, "--queue-cap must be positive")
        | Some _ | None -> Ok ()
      in
      let* () =
        match breaker with
        | Some k when k <= 0 -> Error (2, "--breaker must be positive")
        | Some _ | None -> Ok ()
      in
      let* () =
        if breaker_cooldown <= 0.0 || not (Float.is_finite breaker_cooldown)
        then Error (2, "--breaker-cooldown must be a positive number of seconds")
        else Ok ()
      in
      let* () =
        if plan_cache < 1 then Error (2, "--plan-cache must be positive")
        else Ok ()
      in
      let* () =
        if opt_defense < 1 then Error (2, "--opt-defense must be positive")
        else Ok ()
      in
      let* workload =
        match (workload_file, generate) with
        | Some path, None -> usage (Workload.load path)
        | None, Some n ->
          usage
            (Result.map_error Workload.gen_error_message
               (Workload.generate ~seed ~n ~mean_gap_s:mean_gap ()))
        | _ -> Error (2, "provide exactly one of --workload or --generate")
      in
      let* graph = usage (load_graph data) in
      Ok (workload, graph, fault_cfg, mem_cfg)
    with
    | Error (2, msg) -> die_usage msg
    | Error (_, msg) -> die_runtime msg
    | Ok (workload, graph, fault_cfg, mem_cfg) ->
      let cluster =
        Cluster.with_memory Plan_util.default_options.Plan_util.cluster
          mem_cfg
      in
      let options = Plan_util.make ~cluster ~faults:fault_cfg () in
      let overload =
        Server.overload ?queue_cap ~shed_policy ?deadline_s:deadline
          ?breaker_k:breaker ~breaker_cooldown_s:breaker_cooldown ~degrade ()
      in
      let cfg =
        Server.config ~window_s:window ~policy ~share:(not no_share)
          ~overload
          ?optimize:
            (if optimize then
               Some
                 (Server.optimize ~policy:opt_policy
                    ~cache_capacity:plan_cache ~defense_k:opt_defense ())
             else None)
          ~options engine
      in
      let report = Server.run cfg (Engine.input_of_graph graph) workload in
      if json then print_endline (Json.to_string (Server.to_json report))
      else if detail then Fmt.pr "%a@." Server.pp_detail report
      else Fmt.pr "%a@." Server.pp report;
      (* Sharing must never change an answer: a divergence from the solo
         runs (or any failed query) is a runtime failure. *)
      if (not report.Server.r_all_matched) || report.Server.r_errors > 0
      then exit 1
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Drive a timed query workload through the query server: \
             windowed admission, cross-query MQO (shared composite plans \
             across overlapping queries), slot scheduling, and per-query \
             latency/savings reporting against back-to-back execution.")
    Term.(const run $ data $ workload_file $ generate $ seed $ mean_gap
          $ engine $ window $ policy $ no_share $ detail $ json $ faults
          $ mem $ deadline $ queue_cap $ shed_policy $ degrade $ breaker
          $ breaker_cooldown $ optimize_arg $ opt_policy_arg $ plan_cache
          $ opt_defense $ verbose_arg)

(* --- lint --------------------------------------------------------------- *)

(* Both analysis layers over one query text: the AST lint, then — when
   the query is inside the analytical fragment — the optimizer-invariant
   verifier. Parse failures surface as [parse-error] diagnostics, so
   every input yields a report rather than a usage error. *)
let lint_text src =
  let ast_ds = Ast_lint.lint_source src in
  let plan_ds =
    match Rapida_sparql.Analytical.parse src with
    | Ok q -> Plan_verify.verify_query q
    | Error _ -> [] (* already reported as parse-error / analytical-form *)
  in
  Diagnostic.sort (ast_ds @ plan_ds)

let severity_arg =
  let parse s =
    match String.lowercase_ascii s with
    | "error" -> Ok Diagnostic.Error
    | "warning" -> Ok Diagnostic.Warning
    | "info" -> Ok Diagnostic.Info
    | _ -> Error (`Msg "expected error, warning, or info")
  in
  Arg.conv (parse, fun ppf s -> Fmt.string ppf (Diagnostic.severity_name s))

(* Shared by lint and analyze: the CI gate. Without --min-severity the
   historical behaviour holds (print everything, exit 1 on errors); with
   it, findings below LEVEL are dropped from output and counts and any
   remaining finding fails the run. *)
let min_severity_arg =
  Arg.(value & opt (some severity_arg) None
       & info [ "min-severity" ] ~docv:"LEVEL"
           ~doc:"Report only diagnostics at or above LEVEL (error, warning, \
                 info) and exit 1 when any remain — the CI gate. Without \
                 this option every finding is printed and only \
                 error-severity findings fail the run.")

let rules_arg =
  Arg.(value & flag
       & info [ "rules" ]
           ~doc:"Print the registry of every static-analysis rule (id, \
                 default severity, layer, one-line doc) and exit; honours \
                 $(b,--json).")

let print_rules json =
  if json then print_endline (Json.to_string (Rules.to_json Rules.all))
  else Fmt.pr "%a" Rules.pp Rules.all

let apply_min_severity min_severity reports =
  match min_severity with
  | None -> reports
  | Some level ->
    List.map
      (fun (file, ds) ->
        ( file,
          List.filter
            (fun d ->
              Diagnostic.compare_severity d.Diagnostic.severity level <= 0)
            ds ))
      reports

let gate_failed min_severity reports =
  match min_severity with
  | None -> List.exists (fun (_, ds) -> Diagnostic.has_errors ds) reports
  | Some _ -> List.exists (fun (_, ds) -> ds <> []) reports

let count_severity reports sev =
  List.fold_left
    (fun n (_, ds) ->
      n + List.length (List.filter (fun d -> d.Diagnostic.severity = sev) ds))
    0 reports

(* Resolve FILE / --catalog / --catalog-all inputs to (label, source)
   pairs, shared by lint and analyze. *)
let gather_inputs ~verb files catalog_ids catalog_all =
  let file_inputs =
    List.map
      (fun path ->
        match read_file path with
        | Ok src -> (path, src)
        | Error msg -> die_usage msg)
      files
  in
  let catalog_inputs =
    let entries =
      if catalog_all then Catalog.all
      else
        List.map
          (fun id ->
            match Catalog.find id with
            | Some e -> e
            | None -> die_usage ("unknown catalog query " ^ id))
          catalog_ids
    in
    List.map (fun e -> ("catalog:" ^ e.Catalog.id, e.Catalog.sparql)) entries
  in
  let inputs = file_inputs @ catalog_inputs in
  if inputs = [] then
    die_usage
      (Printf.sprintf "nothing to %s: pass FILEs, --catalog ID, or --catalog-all"
         verb);
  inputs

let lint_cmd =
  let files =
    Arg.(value & pos_all string []
         & info [] ~docv:"FILE" ~doc:"SPARQL query files to lint.")
  in
  let catalog_ids =
    Arg.(value & opt_all string []
         & info [ "c"; "catalog" ]
             ~doc:"Lint a catalog query by id (repeatable).")
  in
  let catalog_all =
    Arg.(value & flag
         & info [ "catalog-all" ] ~doc:"Lint every catalog query.")
  in
  let json =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Print one report object per input: file, counts by \
                   severity, and the diagnostics with rule ids and spans.")
  in
  let run files catalog_ids catalog_all json min_severity rules =
    if rules then print_rules json
    else begin
      let inputs = gather_inputs ~verb:"lint" files catalog_ids catalog_all in
      let reports =
        List.map (fun (label, src) -> (label, lint_text src)) inputs
        |> apply_min_severity min_severity
      in
      if json then
        print_endline
          (Json.to_string
             (Json.Obj
                [
                  ( "reports",
                    Json.List
                      (List.map
                         (fun (file, ds) -> Diagnostic.report_json ~file ds)
                         reports) );
                  ("errors", Json.Int (count_severity reports Diagnostic.Error));
                  ( "warnings",
                    Json.Int (count_severity reports Diagnostic.Warning) );
                  ("infos", Json.Int (count_severity reports Diagnostic.Info));
                ]))
      else
        List.iter
          (fun (file, ds) ->
            List.iter
              (fun d -> Fmt.pr "%a@." (Diagnostic.pp_located ~file) d)
              ds)
          reports;
      if gate_failed min_severity reports then exit 1
    end
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:"Statically analyze SPARQL queries: semantic lint of the AST \
             plus verification of the optimizer's derived plans. Exits 0 \
             when no error-severity diagnostics were reported (no finding \
             at or above --min-severity, when given), 1 otherwise, 2 on \
             usage errors.")
    Term.(const run $ files $ catalog_ids $ catalog_all $ json
          $ min_severity_arg $ rules_arg)

(* --- analyze ------------------------------------------------------------ *)

let analyze_cmd =
  let files =
    Arg.(value & pos_all string []
         & info [] ~docv:"FILE" ~doc:"SPARQL query files to analyze.")
  in
  let catalog_ids =
    Arg.(value & opt_all string []
         & info [ "c"; "catalog" ]
             ~doc:"Analyze a catalog query by id (repeatable).")
  in
  let catalog_all =
    Arg.(value & flag
         & info [ "catalog-all" ] ~doc:"Analyze every catalog query.")
  in
  let data =
    Arg.(value & opt (some string) None
         & info [ "d"; "data" ] ~docv:"FILE"
             ~doc:"Dataset file (N-Triples) to build the statistics catalog \
                   from.")
  in
  let stats_file =
    Arg.(value & opt (some string) None
         & info [ "stats" ] ~docv:"FILE"
             ~doc:"Load a previously dumped statistics catalog (JSON) \
                   instead of scanning a dataset.")
  in
  let dump_stats =
    Arg.(value & opt (some string) None
         & info [ "dump-stats" ] ~docv:"FILE"
             ~doc:"Write the statistics catalog as JSON (reloadable with \
                   --stats) and continue.")
  in
  let mem =
    Arg.(value & opt (some string) None
         & info [ "mem" ] ~docv:"SPEC"
             ~doc:"Per-task memory budget the byte-level diagnostics \
                   (broadcast feasibility, predicted map-join overcommit) \
                   compare against (same syntax as rapida query --mem).")
  in
  let json =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Print one report object per input: file, counts by \
                   severity, the diagnostics, and the annotated plan tree \
                   with cardinality and byte intervals.")
  in
  let run files catalog_ids catalog_all data stats_file dump_stats mem_spec
      json min_severity rules =
    if rules then print_rules json
    else begin
      let inputs =
        gather_inputs ~verb:"analyze" files catalog_ids catalog_all
      in
      let catalog =
        match (data, stats_file) with
        | Some path, None -> (
          match load_graph path with
          | Ok graph -> Stats_catalog.build graph
          | Error msg -> die_usage msg)
        | None, Some path -> (
          let parsed =
            Result.bind (read_file path) (fun src ->
                Result.map_error
                  (fun msg -> Printf.sprintf "%s: %s" path msg)
                  (Result.bind (Json.of_string src) Stats_catalog.of_json))
          in
          match parsed with
          | Ok catalog -> catalog
          | Error msg -> die_usage msg)
        | _ -> die_usage "provide exactly one of --data or --stats"
      in
      (match dump_stats with
      | None -> ()
      | Some path -> (
        match
          let oc = open_out path in
          Fun.protect
            ~finally:(fun () -> close_out oc)
            (fun () ->
              output_string oc (Json.to_string (Stats_catalog.to_json catalog));
              output_char oc '\n')
        with
        | () -> ()
        | exception Sys_error msg ->
          die_runtime ("cannot write stats: " ^ msg)));
      let memory =
        match mem_spec with
        | None -> Rapida_mapred.Memory.default
        | Some spec -> (
          match Rapida_mapred.Memory.parse_spec spec with
          | Ok cfg -> cfg
          | Error msg -> die_usage msg)
      in
      (* Unparsable inputs still yield a report — the lint diagnostics
         carry the parse failure — so the exit code works like lint. *)
      let analyses =
        List.map
          (fun (label, src) ->
            match Rapida_sparql.Analytical.parse src with
            | Ok q -> (label, Some (Card_analysis.analyze ~memory catalog q))
            | Error _ -> (label, None))
          inputs
      in
      let reports =
        List.map
          (fun ((label, src), (_, analysis)) ->
            let ds =
              match analysis with
              | Some a -> a.Card_analysis.diagnostics
              | None -> lint_text src
            in
            (label, ds))
          (List.combine inputs analyses)
        |> apply_min_severity min_severity
      in
      if json then
        print_endline
          (Json.to_string
             (Json.Obj
                [
                  ( "reports",
                    Json.List
                      (List.map2
                         (fun (file, ds) (_, analysis) ->
                           let plan =
                             match analysis with
                             | Some a -> (
                               match
                                 Json.member "plan" (Card_analysis.to_json a)
                               with
                               | Some p -> p
                               | None -> Json.Null)
                             | None -> Json.Null
                           in
                           match Diagnostic.report_json ~file ds with
                           | Json.Obj fields ->
                             Json.Obj (fields @ [ ("plan", plan) ])
                           | other -> other)
                         reports analyses) );
                  ("errors", Json.Int (count_severity reports Diagnostic.Error));
                  ( "warnings",
                    Json.Int (count_severity reports Diagnostic.Warning) );
                  ("infos", Json.Int (count_severity reports Diagnostic.Info));
                ]))
      else
        List.iter2
          (fun (file, ds) (_, analysis) ->
            (match analysis with
            | Some a -> Fmt.pr "-- %s@.%a@." file Card_analysis.pp_plan a
            | None -> ());
            List.iter
              (fun d -> Fmt.pr "%a@." (Diagnostic.pp_located ~file) d)
              ds)
          reports analyses;
      if gate_failed min_severity reports then exit 1
    end
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Static cardinality and cost analysis: annotate each query's \
             logical plan with sound cardinality and shuffle-byte \
             intervals derived from a statistics catalog, and report \
             stats-aware diagnostics (statically empty joins, zero-\
             selectivity filters, skew, broadcast feasibility). Exits 0 \
             when the gate passes, 1 otherwise, 2 on usage errors.")
    Term.(const run $ files $ catalog_ids $ catalog_all $ data $ stats_file
          $ dump_stats $ mem $ json $ min_severity_arg $ rules_arg)

(* --- explain ------------------------------------------------------------ *)

let explain_cmd =
  let query_file =
    Arg.(value & opt (some string) None
         & info [ "q"; "query" ] ~doc:"SPARQL query file.")
  in
  let catalog_id =
    Arg.(value & opt (some string) None
         & info [ "c"; "catalog" ] ~doc:"Catalog query id.")
  in
  let json =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Print the plan description and predicted MR-cycle counts \
                   per engine as JSON.")
  in
  let lint =
    Arg.(value & flag
         & info [ "lint" ]
             ~doc:"Also run the static analyzer (AST lint + plan \
                   verification) and print its diagnostics.")
  in
  let analyze =
    Arg.(value & flag
         & info [ "analyze" ]
             ~doc:"Annotate the logical plan with cardinality and byte \
                   intervals from a statistics catalog (requires --data or \
                   --stats) and print the stats-aware diagnostics.")
  in
  let data =
    Arg.(value & opt (some string) None
         & info [ "d"; "data" ] ~docv:"FILE"
             ~doc:"Dataset file (N-Triples) to build the --analyze \
                   statistics catalog from.")
  in
  let stats_file =
    Arg.(value & opt (some string) None
         & info [ "stats" ] ~docv:"FILE"
             ~doc:"Statistics catalog (JSON, from rapida analyze \
                   --dump-stats) for --analyze.")
  in
  let run query_file catalog_id json lint analyze optimize opt_policy data
      stats_file =
    let src =
      match query_text query_file catalog_id with
      | Ok src -> src
      | Error msg -> die_usage msg
    in
    let lint_ds = if lint then lint_text src else [] in
    match Rapida_sparql.Analytical.parse src with
    | Error msg -> die_usage msg
    | Ok q ->
      let catalog =
        lazy
          (match (data, stats_file) with
          | Some path, None -> (
            match load_graph path with
            | Ok graph -> Stats_catalog.build graph
            | Error msg -> die_usage msg)
          | None, Some path -> (
            let parsed =
              Result.bind (read_file path) (fun s ->
                  Result.map_error
                    (fun msg -> Printf.sprintf "%s: %s" path msg)
                    (Result.bind (Json.of_string s) Stats_catalog.of_json))
            in
            match parsed with
            | Ok catalog -> catalog
            | Error msg -> die_usage msg)
          | _ ->
            die_usage
              "--analyze and --optimize need exactly one of --data or --stats")
      in
      let analysis =
        if not analyze then None
        else Some (Card_analysis.analyze (Lazy.force catalog) q)
      in
      (* Plan twice through a fresh bounded cache: the replan demonstrates
         that an identical (shape, catalog) pair skips enumeration. *)
      let optimized =
        if not optimize then None
        else
          let catalog = Lazy.force catalog in
          let catalog_fp = Planner.catalog_fingerprint catalog in
          let cache = Planner.create_cache ~capacity:4 in
          let plan () =
            Planner.plan_cached ~cache ~catalog ~catalog_fp ~policy:opt_policy q
          in
          let _, first = plan () in
          let d, replan = plan () in
          Some (d, first, replan, Planner.shape_fingerprint opt_policy q,
                catalog_fp)
      in
      let hit_name = function `Hit -> "hit" | `Miss -> "miss" in
      if json then begin
        let fields =
          [
            ( "subqueries",
              Json.Int (List.length q.Rapida_sparql.Analytical.subqueries) );
            ( "plan",
              Json.String (Rapida_core.Rapid_analytics.plan_description q) );
            ( "predicted_cycles",
              Json.Obj
                (List.map
                   (fun kind ->
                     ( Engine.kind_name kind,
                       Json.Int (Rapida_core.Plan_summary.predict kind q) ))
                   Engine.all_kinds) );
          ]
          @ (if lint then
               [ ("lint", Json.List (List.map Diagnostic.to_json lint_ds)) ]
             else [])
          @ (match optimized with
            | None -> []
            | Some (d, first, replan, shape_fp, catalog_fp) ->
              [
                ( "optimize",
                  match Planner.decision_to_json d with
                  | Json.Obj fs ->
                    Json.Obj
                      (fs
                      @ [
                          ( "cache",
                            Json.Obj
                              [
                                ("first", Json.String (hit_name first));
                                ("replan", Json.String (hit_name replan));
                                ( "shape_fp",
                                  Json.String (Planner.fingerprint_hex shape_fp) );
                                ( "catalog_fp",
                                  Json.String (Planner.fingerprint_hex catalog_fp)
                                );
                              ] );
                        ])
                  | other -> other );
              ])
          @
          match analysis with
          | Some a -> [ ("analyze", Card_analysis.to_json a) ]
          | None -> []
        in
        print_endline (Json.to_string (Json.Obj fields))
      end
      else begin
        Fmt.pr "%a@." Rapida_sparql.Analytical.pp q;
        (match q.Rapida_sparql.Analytical.subqueries with
        | a :: b :: _ ->
          let report = Rapida_core.Overlap.check a b in
          Fmt.pr "@.%a@." Rapida_core.Overlap.pp_report report
        | _ -> ());
        Fmt.pr "@.%s@." (Rapida_core.Rapid_analytics.plan_description q);
        Fmt.pr "@.predicted MapReduce workflow lengths:@.%s@."
          (Rapida_core.Plan_summary.describe q);
        (match optimized with
        | Some (d, first, replan, shape_fp, catalog_fp) ->
          Fmt.pr "@.cost-based plan:@.%a" Planner.pp_decision d;
          Fmt.pr "plan cache: first plan %s, replan %s (shape %s, catalog %s)@."
            (hit_name first) (hit_name replan)
            (Planner.fingerprint_hex shape_fp)
            (Planner.fingerprint_hex catalog_fp)
        | None -> ());
        (match analysis with
        | Some a ->
          Fmt.pr "@.static cost analysis:@.%a@." Card_analysis.pp_plan a;
          List.iter
            (fun d -> Fmt.pr "%a@." Diagnostic.pp d)
            a.Card_analysis.diagnostics
        | None -> ());
        if lint then begin
          Fmt.pr "@.static analysis:@.";
          if lint_ds = [] then Fmt.pr "  clean@."
          else List.iter (fun d -> Fmt.pr "  %a@." Diagnostic.pp d) lint_ds
        end
      end
  in
  Cmd.v
    (Cmd.info "explain"
       ~doc:"Show overlap analysis and the composite rewriting for a query")
    Term.(const run $ query_file $ catalog_id $ json $ lint $ analyze
          $ optimize_arg $ opt_policy_arg $ data $ stats_file)

(* --- catalog ------------------------------------------------------------ *)

let catalog_cmd =
  let id =
    Arg.(value & pos 0 (some string) None
         & info [] ~docv:"ID" ~doc:"Query id to print in full.")
  in
  let run = function
    | Some id -> (
      match Catalog.find id with
      | Some e ->
        Fmt.pr "-- %s (%s): %s@.%s@." e.Catalog.id
          (Catalog.dataset_name e.Catalog.dataset)
          e.Catalog.description e.Catalog.sparql
      | None -> die_usage ("unknown catalog query " ^ id))
    | None ->
      Fmt.pr "%-5s %-13s %s@." "Id" "Dataset" "Description";
      List.iter
        (fun e ->
          Fmt.pr "%-5s %-13s %s@." e.Catalog.id
            (Catalog.dataset_name e.Catalog.dataset)
            e.Catalog.description)
        Catalog.all
  in
  Cmd.v
    (Cmd.info "catalog" ~doc:"List the paper's query workload")
    Term.(const run $ id)

(* --- stats -------------------------------------------------------------- *)

let stats_cmd =
  let data =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"FILE" ~doc:"Dataset file (N-Triples).")
  in
  let run data =
    match load_graph data with
    | Error msg -> die_usage msg
    | Ok graph ->
      let tg = Rapida_ntga.Tg_store.of_graph graph in
      let vp = Rapida_relational.Vp_store.of_graph graph in
      let parts, bytes = Rapida_relational.Vp_store.stats vp in
      Fmt.pr "triples: %d (%d bytes)@." (Graph.size graph)
        (Graph.size_bytes graph);
      Fmt.pr "subjects: %d, properties: %d@."
        (List.length (Graph.subjects graph))
        (List.length (Graph.properties graph));
      Fmt.pr "%a@." Rapida_ntga.Tg_store.pp tg;
      Fmt.pr "vp-store: %d partitions, %d bytes@." parts bytes
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Print dataset statistics")
    Term.(const run $ data)

(* --- fuzz --------------------------------------------------------------- *)

let fuzz_cmd =
  let module Fuzz = Rapida_fuzz.Fuzz in
  let module Oracle = Rapida_fuzz.Oracle in
  let seed =
    Arg.(value & opt int 42
         & info [ "seed" ] ~docv:"N"
             ~doc:"Run seed. The same seed and budget generate the same \
                   cases and reach the same verdicts.")
  in
  let budget =
    Arg.(value & opt int 200
         & info [ "budget" ] ~docv:"N" ~doc:"Number of generated cases.")
  in
  let time_budget =
    Arg.(value & opt (some float) None
         & info [ "time-budget" ] ~docv:"SECONDS"
             ~doc:"Stop generating new cases after this much wall-clock \
                   time (corpus replay always completes).")
  in
  let corpus =
    Arg.(value & opt (some string) None
         & info [ "corpus" ] ~docv:"DIR"
             ~doc:"Corpus directory: its .rq entries are replayed through \
                   every oracle before generation, and new shrunk \
                   reproducers are saved into it.")
  in
  let oracles =
    Arg.(value & opt (some string) None
         & info [ "oracles" ] ~docv:"LIST"
             ~doc:"Comma-separated oracle families to run: differential, \
                   metamorphic, analyzer, robustness. Default: all.")
  in
  let data =
    Arg.(value & opt (some string) None
         & info [ "d"; "data" ] ~docv:"FILE"
             ~doc:"Fuzz against this dataset (N-Triples) instead of the \
                   built-in BSBM graph.")
  in
  let products =
    Arg.(value & opt int 30
         & info [ "products" ] ~docv:"N"
             ~doc:"Scale of the built-in BSBM dataset (ignored with \
                   --data).")
  in
  let adversarial =
    Arg.(value & opt float 0.2
         & info [ "adversarial" ] ~docv:"FRACTION"
             ~doc:"Fraction of cases generated in adversarial mode \
                   (predicates, classes, and thresholds the data misses).")
  in
  let knobs =
    Arg.(value & opt int 2
         & info [ "knobs" ] ~docv:"N"
             ~doc:"Knob configurations (faults x memory x checkpoint x \
                   planner x optimizer policy) per metamorphic check.")
  in
  let json =
    Arg.(value & flag
         & info [ "json" ]
             ~doc:"Print the machine-readable report (timings, cases/sec) \
                   instead of the text summary.")
  in
  let run seed budget time_budget corpus oracles data products adversarial
      knobs json verbose =
    setup_logs verbose;
    let oracles =
      match oracles with
      | None -> Oracle.all
      | Some spec ->
        String.split_on_char ',' spec
        |> List.filter (fun s -> String.trim s <> "")
        |> List.map (fun s ->
               match Oracle.name_of_string (String.trim s) with
               | Some o -> o
               | None -> die_usage ("unknown oracle " ^ String.trim s))
    in
    if oracles = [] then die_usage "no oracles selected";
    if budget < 0 then die_usage "--budget must be non-negative";
    let graph =
      match data with
      | None -> None
      | Some path -> (
        match load_graph path with
        | Ok g -> Some g
        | Error msg -> die_usage msg)
    in
    let report =
      Fuzz.run
        {
          Fuzz.default_config with
          seed;
          budget;
          time_budget_s = time_budget;
          oracles;
          corpus_dir = corpus;
          products;
          adversarial;
          knob_count = knobs;
          graph;
        }
    in
    if json then print_endline (Json.to_string (Fuzz.to_json report))
    else Fmt.pr "%a" Fuzz.pp report;
    if Fuzz.violations report > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"Differential fuzzing: generated analytical queries through \
             the cross-engine, metamorphic, analyzer-soundness, and \
             robustness oracles"
       ~man:
         [
           `S Manpage.s_exit_status;
           `P "0 when every oracle check passed (or was skipped); 1 when \
               any oracle reported a violation; 2 on usage errors.";
         ])
    Term.(const run $ seed $ budget $ time_budget $ corpus $ oracles $ data
          $ products $ adversarial $ knobs $ json $ verbose_arg)

let () =
  Plan_verify.install_engine_hook ();
  let doc = "RAPIDAnalytics: optimization of complex SPARQL analytical queries" in
  let info = Cmd.info "rapida" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            gen_cmd; query_cmd; serve_cmd; lint_cmd; analyze_cmd; explain_cmd;
            catalog_cmd; stats_cmd; fuzz_cmd;
          ]))
